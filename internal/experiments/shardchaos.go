package experiments

import (
	"fmt"

	"hetlb/internal/core"
	"hetlb/internal/faults"
	"hetlb/internal/harness"
	"hetlb/internal/obs/span"
	"hetlb/internal/plot"
	"hetlb/internal/protocol"
	"hetlb/internal/rng"
	"hetlb/internal/shardgossip"
	"hetlb/internal/workload"
)

// ShardChaosConfig parameterizes the sharded-engine degradation sweep: a
// typed workload balanced by MJTB on the sharded epoch engine while a crash
// plan takes machines down. Each crash-count cell runs Runs replications;
// every replication runs the SAME instance and engine seed fault-free and
// under the plan, so the reported degradation isolates the faults from the
// workload draw.
type ShardChaosConfig struct {
	// System: Machines machines, Jobs jobs of Types job types with costs
	// U[1, CostHi].
	Machines, Jobs, Types int
	CostHi                core.Cost
	// CrashCounts are the scheduled crash counts swept (0 is the fault-free
	// reference column).
	CrashCounts []int
	// Crash shape: each crash lasts about MeanDown epochs and loses the
	// machine's jobs with probability LoseProb (otherwise they freeze and
	// are re-hosted on recovery). Crashes are scheduled inside
	// [1, Epochs*3/4] so the run outlives the churn.
	MeanDown int64
	LoseProb float64
	// Epochs is the fixed epoch budget per run.
	Epochs int
	// Shards is the engine's shard count (0 = AutoShards); it never affects
	// results, only parallelism.
	Shards int
	// Runs is the number of replications per cell; Seed keys everything.
	Runs int
	Seed uint64
}

// PaperShardChaos returns the default sweep on a paper-scale typed system.
// Scale Machines/Jobs up (e.g. 100k/10M) for the full-scale degradation
// picture; the sweep is deterministic at any scale and worker count.
func PaperShardChaos() ShardChaosConfig {
	return ShardChaosConfig{
		Machines: 33, Jobs: 400, Types: 4, CostHi: 99,
		CrashCounts: []int{0, 2, 4, 8},
		MeanDown:    12, LoseProb: 0.25,
		Epochs: 80, Shards: 0,
		Runs: 16, Seed: 23,
	}
}

// Reduced scales the sweep down for tests.
func (c ShardChaosConfig) Reduced() ShardChaosConfig {
	r := c
	r.CrashCounts = []int{0, 3}
	r.Runs = 4
	r.Epochs = 30
	return r
}

// ShardChaosResult aggregates one crash-count cell.
type ShardChaosResult struct {
	Crashes int
	// MeanDegradation is the mean of Cmax(faulted) / Cmax(fault-free) over
	// replications — both runs on the same instance, initial distribution
	// and engine seed, so only the fault plan differs. Frozen jobs keep
	// counting toward the faulted Cmax; lost jobs leave it, so heavy-loss
	// plans can dip below 1.
	MeanDegradation float64
	// MeanVoidedFrac is the mean fraction of scheduled sessions voided
	// because a participant was down.
	MeanVoidedFrac float64
	// Loss accounting, averaged per replication.
	MeanJobsLost, MeanRehosted float64
	// MeanMoveOverhead is the mean of moves(faulted) − moves(fault-free):
	// the extra migrations recovery churn forces.
	MeanMoveOverhead float64
}

// shardChaosRun is one replication's raw outcome.
type shardChaosRun struct {
	Degradation float64
	VoidedFrac  float64
	JobsLost    int
	Rehosted    int
	MoveDelta   int
}

// ShardChaos runs the sweep sequentially.
func ShardChaos(cfg ShardChaosConfig) ([]ShardChaosResult, error) {
	return ShardChaosWith(harness.Options{}, cfg)
}

// ShardChaosWith is ShardChaos with explicit harness options. Cells are
// keyed by rng.DeriveSeed(cfg.Seed, cell index) like the netsim chaos
// sweep, so results are bit-identical for any worker count — and, because
// the sharded engine is shard-count invariant, for any Shards too.
func ShardChaosWith(opt harness.Options, cfg ShardChaosConfig) ([]ShardChaosResult, error) {
	if cfg.Runs <= 0 {
		return nil, fmt.Errorf("experiments: shard chaos Runs must be positive")
	}
	if cfg.Epochs <= 0 {
		return nil, fmt.Errorf("experiments: shard chaos Epochs must be positive")
	}
	if cfg.Machines < 2 || cfg.Jobs < 1 || cfg.Types < 1 {
		return nil, fmt.Errorf("experiments: shard chaos needs >= 2 machines, >= 1 job and >= 1 type")
	}
	var met *shardgossip.Metrics
	if opt.Metrics != nil {
		met = shardgossip.NewMetrics(opt.Metrics)
	}
	out := make([]ShardChaosResult, 0, len(cfg.CrashCounts))
	for cell, crashes := range cfg.CrashCounts {
		crashes := crashes
		cellSeed := rng.DeriveSeed(cfg.Seed, uint64(cell))
		var sweep span.ID
		if opt.Spans != nil {
			sweep = opt.Spans.Append(span.Span{
				Kind:  span.KindSweep,
				A:     int32(cell),
				B:     -1,
				Start: int64(cell),
				End:   int64(cell),
				Value: int64(crashes),
			})
			opt.Spans.SetRoot(sweep)
		}
		rs, err := harness.Map(opt, cellSeed, cfg.Runs, func(rep *harness.Rep) (shardChaosRun, error) {
			return shardChaosReplication(rep, cfg, crashes, met)
		})
		if opt.Spans != nil {
			opt.Spans.SetRoot(0)
		}
		if err != nil {
			return nil, err
		}
		agg := ShardChaosResult{Crashes: crashes}
		for _, r := range rs {
			agg.MeanDegradation += r.Degradation
			agg.MeanVoidedFrac += r.VoidedFrac
			agg.MeanJobsLost += float64(r.JobsLost)
			agg.MeanRehosted += float64(r.Rehosted)
			agg.MeanMoveOverhead += float64(r.MoveDelta)
		}
		n := float64(cfg.Runs)
		agg.MeanDegradation /= n
		agg.MeanVoidedFrac /= n
		agg.MeanJobsLost /= n
		agg.MeanRehosted /= n
		agg.MeanMoveOverhead /= n
		out = append(out, agg)
	}
	return out, nil
}

// shardChaosReplication runs one instance fault-free and under a crash plan
// and reports the degradation between the two trajectories.
func shardChaosReplication(rep *harness.Rep, cfg ShardChaosConfig, crashes int, met *shardgossip.Metrics) (shardChaosRun, error) {
	gen := rep.RNG
	ty := workload.UniformTyped(gen, cfg.Machines, cfg.Jobs, cfg.Types, 1, cfg.CostHi)
	initial := randomInitial(gen, ty)
	engineSeed := gen.Uint64()
	crashSeed := gen.Uint64()

	var plan *faults.Config
	if crashes > 0 {
		horizon := int64(cfg.Epochs * 3 / 4)
		if horizon < 1 {
			horizon = 1
		}
		plan = &faults.Config{
			Crashes: faults.RandomCrashes(crashSeed, cfg.Machines, horizon, crashes, cfg.MeanDown, cfg.LoseProb),
		}
	}

	// Fault-free reference on the identical instance, initial distribution
	// and engine seed: the only difference below is the armed plan.
	free, err := shardChaosTrajectory(ty, initial, engineSeed, cfg, nil, nil)
	if err != nil {
		return shardChaosRun{}, err
	}
	faulted, err := shardChaosTrajectory(ty, initial, engineSeed, cfg, plan, rep.Spans)
	if err != nil {
		return shardChaosRun{}, err
	}
	if met != nil {
		// Fold the faulted run's degradation into the shared instruments;
		// the reference run stays out so the counters describe the degraded
		// engine only.
		met.Crashes.Add(int64(faulted.res.Crashes))
		met.Recoveries.Add(int64(faulted.res.Recoveries))
		met.JobsLost.Add(int64(faulted.res.JobsLost))
		met.JobsRehosted.Add(int64(faulted.res.JobsRehosted))
		met.Voided.Add(int64(faulted.res.Voided))
	}
	deg := 0.0
	if free.res.FinalMakespan > 0 {
		deg = float64(faulted.res.FinalMakespan) / float64(free.res.FinalMakespan)
	}
	voidedFrac := 0.0
	if faulted.res.Steps > 0 {
		voidedFrac = float64(faulted.res.Voided) / float64(faulted.res.Steps)
	}
	return shardChaosRun{
		Degradation: deg,
		VoidedFrac:  voidedFrac,
		JobsLost:    faulted.res.JobsLost,
		Rehosted:    faulted.res.JobsRehosted,
		MoveDelta:   faulted.moves - free.moves,
	}, nil
}

// shardChaosTrajectory runs one engine for the fixed epoch budget and
// validates conservation on the way out.
func shardChaosTrajectory(ty *core.Typed, initial *core.Assignment, seed uint64, cfg ShardChaosConfig, plan *faults.Config, spans *span.Recorder) (struct {
	res   shardgossip.Result
	moves int
}, error) {
	var out struct {
		res   shardgossip.Result
		moves int
	}
	e, err := shardgossip.New(protocol.MJTB{Model: ty}, initial, shardgossip.Config{
		Seed:   seed,
		Shards: cfg.Shards,
		Faults: plan,
		Spans:  spans,
	})
	if err != nil {
		return out, err
	}
	defer e.Close()
	sessionsPerEpoch := cfg.Machines / 2
	out.res = e.Run(cfg.Epochs*sessionsPerEpoch, false)
	if err := e.ValidateConservation(); err != nil {
		return out, err
	}
	out.moves = e.Moves()
	return out, nil
}

// ShardChaosTable renders the sweep as a text table.
func ShardChaosTable(results []ShardChaosResult) string {
	rows := make([][]string, 0, len(results))
	for _, r := range results {
		rows = append(rows, []string{
			fmt.Sprint(r.Crashes),
			fmt.Sprintf("%.3f", r.MeanDegradation),
			fmt.Sprintf("%.1f%%", r.MeanVoidedFrac*100),
			fmt.Sprintf("%.1f", r.MeanJobsLost),
			fmt.Sprintf("%.1f", r.MeanRehosted),
			fmt.Sprintf("%+.1f", r.MeanMoveOverhead),
		})
	}
	return plot.Table([]string{"crashes", "Cmax vs fault-free", "voided", "jobs lost", "rehosted", "extra moves"}, rows)
}

// ShardChaosSeries renders degradation against crash count for plotting.
func ShardChaosSeries(results []ShardChaosResult) []plot.Series {
	var xs, ys []float64
	for _, r := range results {
		xs = append(xs, float64(r.Crashes))
		ys = append(ys, r.MeanDegradation)
	}
	return []plot.Series{plot.NewSeries("Cmax ratio", xs, ys)}
}
