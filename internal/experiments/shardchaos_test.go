package experiments

import (
	"reflect"
	"strings"
	"testing"

	"hetlb/internal/harness"
)

// The sharded chaos sweep must be bit-identical across worker counts AND
// across engine shard counts, and its faulty cells must exercise the
// degraded machinery.
func TestShardChaosDeterministic(t *testing.T) {
	cfg := PaperShardChaos().Reduced()
	cfg.Shards = 1
	ref := assertInvariant(t, "ShardChaos", func(opt harness.Options) ([]ShardChaosResult, error) {
		return ShardChaosWith(opt, cfg)
	})
	if len(ref) != len(cfg.CrashCounts) {
		t.Fatalf("got %d cells, want %d", len(ref), len(cfg.CrashCounts))
	}
	for _, shards := range []int{2, 4} {
		c := cfg
		c.Shards = shards
		got, err := ShardChaos(c)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("shards=%d: sweep differs from shards=1", shards)
		}
	}
	free := ref[0]
	if free.Crashes != 0 {
		t.Fatalf("first cell has %d crashes, want the fault-free reference", free.Crashes)
	}
	if free.MeanDegradation != 1 || free.MeanVoidedFrac != 0 || free.MeanJobsLost != 0 || free.MeanMoveOverhead != 0 {
		t.Fatalf("fault-free cell reports degradation: %+v", free)
	}
	faulty := ref[len(ref)-1]
	if faulty.MeanVoidedFrac == 0 {
		t.Error("crash cell voided no sessions — sweep not exercising the down-set")
	}
	if faulty.MeanJobsLost == 0 && faulty.MeanRehosted == 0 {
		t.Error("crash cell neither lost nor rehosted jobs")
	}
	tab := ShardChaosTable(ref)
	if !strings.Contains(tab, "Cmax vs fault-free") || !strings.Contains(tab, "voided") {
		t.Errorf("table missing headers:\n%s", tab)
	}
	if s := ShardChaosSeries(ref); len(s) != 1 {
		t.Errorf("ShardChaosSeries returned %d series, want 1", len(s))
	}
}

func TestShardChaosRejectsBadConfig(t *testing.T) {
	cfg := PaperShardChaos()
	cfg.Runs = 0
	if _, err := ShardChaos(cfg); err == nil {
		t.Error("Runs=0 accepted")
	}
	cfg = PaperShardChaos()
	cfg.Epochs = 0
	if _, err := ShardChaos(cfg); err == nil {
		t.Error("Epochs=0 accepted")
	}
	cfg = PaperShardChaos()
	cfg.Machines = 1
	if _, err := ShardChaos(cfg); err == nil {
		t.Error("Machines=1 accepted")
	}
}
