package experiments

import (
	"fmt"

	"hetlb/internal/central"
	"hetlb/internal/core"
	"hetlb/internal/gossip"
	"hetlb/internal/protocol"
	"hetlb/internal/rng"
)

// SimConfig describes one simulated system for Figures 3–5: either a
// two-cluster heterogeneous system (M2 > 0) running DLB2C, or a single
// homogeneous cluster (M2 == 0) running the same-cost kernel.
type SimConfig struct {
	// Name labels the configuration in figures.
	Name string
	// M1, M2 are the cluster sizes; M2 == 0 means one homogeneous cluster
	// of M1 machines.
	M1, M2 int
	// Jobs is the number of jobs; their costs are uniform on
	// [CostLo, CostHi] (independently per cluster when M2 > 0).
	Jobs           int
	CostLo, CostHi core.Cost
	// Runs is the number of independent instances/seeds.
	Runs int
	// StepsPerMachine bounds each run at StepsPerMachine × machines
	// pairwise exchanges.
	StepsPerMachine int
	// Seed drives instance generation and the engines.
	Seed uint64
}

// Machines returns the total machine count.
func (c SimConfig) Machines() int { return c.M1 + c.M2 }

// PaperHetero returns the paper's small heterogeneous system: clusters of
// 64 and 32 machines, 768 jobs, costs U[1,1000].
func PaperHetero() SimConfig {
	return SimConfig{Name: "two clusters 64+32", M1: 64, M2: 32, Jobs: 768,
		CostLo: 1, CostHi: 1000, Runs: 100, StepsPerMachine: 30, Seed: 1}
}

// PaperHeteroLarge returns the paper's large heterogeneous system (512 and
// 256 machines).
func PaperHeteroLarge() SimConfig {
	return SimConfig{Name: "two clusters 512+256", M1: 512, M2: 256, Jobs: 768,
		CostLo: 1, CostHi: 1000, Runs: 50, StepsPerMachine: 30, Seed: 2}
}

// PaperHomogeneous returns the paper's homogeneous reference: one cluster
// of 96 machines, 768 jobs.
func PaperHomogeneous() SimConfig {
	return SimConfig{Name: "one cluster 96", M1: 96, M2: 0, Jobs: 768,
		CostLo: 1, CostHi: 1000, Runs: 100, StepsPerMachine: 30, Seed: 3}
}

// Reduced scales a configuration down for tests: fewer runs, smaller
// system, same structure.
func (c SimConfig) Reduced() SimConfig {
	r := c
	r.M1 = max(2, c.M1/8)
	if c.M2 > 0 {
		r.M2 = max(1, c.M2/8)
	}
	r.Jobs = max(8, c.Jobs/8)
	r.Runs = max(3, c.Runs/20)
	return r
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// instance bundles one generated system ready to simulate.
type instance struct {
	model core.CostModel
	proto protocol.Protocol
	// lb is a lower-bound style reference for normalization: the
	// fractional two-cluster bound, or ⌈ΣP/m⌉ for one cluster.
	lb float64
	// cent is the centralized reference schedule makespan: CLB2C for two
	// clusters (Figure 5's "cent"), LPT for one cluster.
	cent core.Cost
	// pmax is the largest processing time in the instance.
	pmax core.Cost
}

// build generates the idx-th instance of a configuration.
func (c SimConfig) build(gen *rng.RNG) instance {
	if c.M2 > 0 {
		tc := coreTwoCluster(gen, c)
		return instance{
			model: tc,
			proto: protocol.DLB2C{Model: tc},
			lb:    core.TwoClusterFractionalLB(tc),
			cent:  central.RunCLB2C(tc).Makespan(),
			pmax:  core.PMax(tc),
		}
	}
	id := coreIdentical(gen, c)
	return instance{
		model: id,
		proto: protocol.SameCost{Model: id},
		lb:    float64(core.IdenticalLowerBound(id)),
		cent:  central.LPT(id).Makespan(),
		pmax:  core.PMax(id),
	}
}

func coreTwoCluster(gen *rng.RNG, c SimConfig) *core.TwoCluster {
	p0 := make([]core.Cost, c.Jobs)
	p1 := make([]core.Cost, c.Jobs)
	for j := range p0 {
		p0[j] = gen.IntRange(c.CostLo, c.CostHi)
		p1[j] = gen.IntRange(c.CostLo, c.CostHi)
	}
	tc, err := core.NewTwoCluster(c.M1, c.M2, p0, p1)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return tc
}

func coreIdentical(gen *rng.RNG, c SimConfig) *core.Identical {
	sizes := make([]core.Cost, c.Jobs)
	for j := range sizes {
		sizes[j] = gen.IntRange(c.CostLo, c.CostHi)
	}
	id, err := core.NewIdentical(c.M1, sizes)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return id
}

// randomInitial places each job on a uniformly random machine — the
// "arbitrary initial distribution" of the paper's decentralized setting.
func randomInitial(gen *rng.RNG, m core.CostModel) *core.Assignment {
	a := core.NewAssignment(m)
	for j := 0; j < m.NumJobs(); j++ {
		a.Assign(j, gen.Intn(m.NumMachines()))
	}
	return a
}

// newEngine builds a gossip engine for an instance.
func newEngine(inst instance, a *core.Assignment, seed uint64) *gossip.Engine {
	return gossip.New(inst.proto, a, gossip.Config{Seed: seed})
}
