package experiments

import (
	"math"
	"testing"

	"hetlb/internal/core"
)

func TestTableIRatiosGrowLinearly(t *testing.T) {
	rows := TableI([]core.Cost{10, 100, 1000}, 1)
	if len(rows) != 3 {
		t.Fatal("wrong row count")
	}
	for _, r := range rows {
		if r.Opt != 2 {
			t.Fatalf("opt = %d", r.Opt)
		}
		if r.FirstSteal != int64(r.N) {
			t.Fatalf("n=%d: first steal at %d", r.N, r.FirstSteal)
		}
		if r.Makespan != int64(r.N)+1 {
			t.Fatalf("n=%d: makespan %d", r.N, r.Makespan)
		}
	}
	// Ratio grows linearly: ratio(1000)/ratio(10) ≈ 100.
	if g := rows[2].Ratio / rows[0].Ratio; g < 50 || g > 200 {
		t.Fatalf("ratio growth %v not linear-ish", g)
	}
}

func TestTableIITrapRows(t *testing.T) {
	rows := TableII([]core.Cost{5, 50})
	for _, r := range rows {
		if r.Opt != 1 {
			t.Fatalf("opt = %d", r.Opt)
		}
		if r.TrapMakespan != r.N {
			t.Fatalf("trap makespan %d, want %d", r.TrapMakespan, r.N)
		}
		if !r.PairwiseOptimal {
			t.Fatal("trap should be pairwise optimal")
		}
	}
}

func TestFigure1ProvesNonConvergence(t *testing.T) {
	r := Figure1()
	if !r.ProvenNonConvergent {
		t.Fatalf("not proven: %d states, %d stable", r.ReachableStates, r.StableStates)
	}
	if r.StableStates != 0 {
		t.Fatal("stable states present")
	}
	if len(r.CycleMakespans) < 3 {
		t.Fatal("no explicit cycle")
	}
	if r.CycleMakespans[0] != r.CycleMakespans[len(r.CycleMakespans)-1] {
		t.Fatal("cycle endpoints disagree")
	}
}

func TestFigure2aShape(t *testing.T) {
	curves, err := Figure2a([]int64{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 2 {
		t.Fatal("wrong curve count")
	}
	for _, c := range curves {
		if c.M != 6 {
			t.Fatal("Figure 2a is m=6")
		}
		var sum float64
		for _, p := range c.P {
			sum += p
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("pmax=%d: probabilities sum to %v", c.PMax, sum)
		}
		if c.Mode < 0.1 || c.Mode > 1.0 {
			t.Fatalf("pmax=%d: mode at %v, expected near 0.5", c.PMax, c.Mode)
		}
		if c.TailBeyond15 > 0.02 {
			t.Fatalf("pmax=%d: tail beyond 1.5 is %v", c.PMax, c.TailBeyond15)
		}
	}
	series := Figure2Series(curves)
	if len(series) != 2 {
		t.Fatal("series conversion broken")
	}
}

func TestFigure2bShape(t *testing.T) {
	curves, err := Figure2b([]int{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range curves {
		if c.PMax != 4 {
			t.Fatal("Figure 2b is pmax=4")
		}
		if c.States <= 0 || c.Iterations <= 0 {
			t.Fatal("missing metadata")
		}
	}
}

func TestFigure3HeteroSimilarToHomogeneous(t *testing.T) {
	// The paper's core Figure 3 finding: heterogeneous and homogeneous
	// equilibrium distributions are qualitatively similar and both low.
	cfgs := []SimConfig{PaperHetero().Reduced(), PaperHomogeneous().Reduced()}
	results := Figure3(cfgs)
	if len(results) != 2 {
		t.Fatal("wrong result count")
	}
	for _, r := range results {
		if len(r.Deviations) != r.Config.Runs {
			t.Fatalf("%s: %d deviations for %d runs", r.Config.Name, len(r.Deviations), r.Config.Runs)
		}
		for _, ratio := range r.RatioToCent {
			if ratio <= 0 {
				t.Fatal("non-positive ratio")
			}
			// The equilibrium should be within 3× of the centralized
			// schedule even on reduced systems (loose sanity bound).
			if ratio > 3 {
				t.Fatalf("%s: equilibrium ratio %v too large", r.Config.Name, ratio)
			}
		}
		h := r.Histogram(0, 4, 16)
		if h.Total != r.Config.Runs {
			t.Fatal("histogram lost samples")
		}
	}
}

func TestFigure4PlateauAndOscillation(t *testing.T) {
	cfgs := []SimConfig{PaperHetero().Reduced()}
	runs := Figure4(cfgs, 2)
	if len(runs) != 2 {
		t.Fatal("wrong run count")
	}
	for _, r := range runs {
		if len(r.MakespanOverCent) < 4 {
			t.Fatal("trajectory too short")
		}
		first := r.MakespanOverCent[0]
		last := r.MakespanOverCent[len(r.MakespanOverCent)-1]
		if last > first {
			t.Fatalf("trajectory got worse: %v -> %v", first, last)
		}
		if r.MinReached <= 0 {
			t.Fatal("min not recorded")
		}
		if r.FinalOscillation < 0 {
			t.Fatal("negative oscillation")
		}
	}
	if s := Figure4Series(runs); len(s) != 2 {
		t.Fatal("series conversion broken")
	}
}

func TestFigure5MostMachinesCrossQuickly(t *testing.T) {
	cfgs := []SimConfig{PaperHetero().Reduced()}
	results := Figure5(cfgs, 1.5)
	r := results[0]
	if r.CrossedRuns == 0 {
		t.Fatal("no run crossed 1.5×cent")
	}
	if len(r.PerMachineExchanges) == 0 {
		t.Fatal("no per-machine samples")
	}
	// The paper's headline: ~90% of machines reach the threshold within a
	// few exchanges per machine. Allow a loose bound on reduced systems.
	if r.Summary.P90 > 40 {
		t.Fatalf("p90 exchanges per machine = %v, far above the paper's ≈5", r.Summary.P90)
	}
	cdf := Figure5CDFSeries(results)
	if len(cdf) != 1 {
		t.Fatal("CDF conversion broken")
	}
	// CDF y-values must be non-decreasing and end at 1.
	ys := cdf[0].Y
	for k := 1; k < len(ys); k++ {
		if ys[k] < ys[k-1] {
			t.Fatal("CDF not monotone")
		}
	}
	if math.Abs(ys[len(ys)-1]-1) > 1e-9 {
		t.Fatalf("CDF ends at %v", ys[len(ys)-1])
	}
}

func TestReducedKeepsStructure(t *testing.T) {
	r := PaperHeteroLarge().Reduced()
	if r.M2 == 0 {
		t.Fatal("reduction dropped the second cluster")
	}
	h := PaperHomogeneous().Reduced()
	if h.M2 != 0 {
		t.Fatal("reduction invented a second cluster")
	}
	if h.M1 < 2 || h.Jobs < 8 || h.Runs < 3 {
		t.Fatal("reduction too aggressive")
	}
}

func BenchmarkFigure3ReducedHetero(b *testing.B) {
	cfg := PaperHetero().Reduced()
	cfg.Runs = 2
	for i := 0; i < b.N; i++ {
		Figure3([]SimConfig{cfg})
	}
}

func TestResidualCheckAgainstUniformModel(t *testing.T) {
	// The Markov model assumes residual imbalance ~ U{0..pmax} after each
	// balancing. Measure the real kernel: the normalized residual must
	// live in [0, 1] and have a mean well inside (0, 1) — the model's
	// plausibility check, not an exact match (the real kernel's residual
	// is pooled-set dependent).
	res := ResidualCheck(8, 64, 1, 100, 2000, 7)
	if res.Samples < 1000 {
		t.Fatalf("only %d samples", res.Samples)
	}
	for _, v := range res.Normalized {
		if v < 0 || v > 1 {
			t.Fatalf("normalized residual %v outside [0,1]", v)
		}
	}
	if res.Summary.Mean <= 0 || res.Summary.Mean >= 1 {
		t.Fatalf("degenerate residual mean %v", res.Summary.Mean)
	}
	if res.ZeroShare < 0 || res.ZeroShare > 1 {
		t.Fatalf("bad zero share %v", res.ZeroShare)
	}
}

func TestExtKClustersQuality(t *testing.T) {
	results, err := ExtKClusters([]int{2, 3}, 3, 72, 50, 3, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatal("wrong result count")
	}
	for _, r := range results {
		if len(r.RatioToLB) != 3 {
			t.Fatal("wrong run count")
		}
		for _, ratio := range r.RatioToLB {
			if ratio < 1-1e-9 {
				t.Fatalf("k=%d: ratio %v below 1 (LB violated)", r.K, ratio)
			}
			if ratio > 3 {
				t.Fatalf("k=%d: equilibrium ratio %v too large", r.K, ratio)
			}
		}
	}
	if s := ExtKClustersSeries(results); len(s) != 2 {
		t.Fatal("series conversion broken")
	}
}

func TestExtDynamicSweep(t *testing.T) {
	results, err := ExtDynamic([]int64{0, 5}, 3, 3, 60, 50, 1, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatal("wrong result count")
	}
	off, on := results[0], results[1]
	if off.BalanceEvery != 0 || off.MeanMoved != 0 {
		t.Fatal("no-balancing row wrong")
	}
	if on.MeanFlow >= off.MeanFlow {
		t.Fatalf("balancing did not reduce mean flow: %v vs %v", on.MeanFlow, off.MeanFlow)
	}
	if tab := ExtDynamicTable(results); len(tab) == 0 {
		t.Fatal("table empty")
	}
}
