package experiments

import (
	"hetlb/internal/harness"
	"hetlb/internal/stats"
)

// Figure3Result holds one configuration's equilibrium makespan sample
// (Figure 3 of the paper compares the heterogeneous distribution to the
// homogeneous one).
type Figure3Result struct {
	Config SimConfig
	// Deviations are the final makespans of each run expressed on the
	// Figure 2 axis: (Cmax − reference)/pmax, where the reference is the
	// fractional lower bound (two clusters) or ⌈ΣP/m⌉ (one cluster).
	Deviations []float64
	// RatioToCent are the final makespans divided by the centralized
	// reference schedule (CLB2C resp. LPT).
	RatioToCent []float64
	// Summary summarizes Deviations.
	Summary stats.Summary
}

// figure3Run is one replication's contribution, merged in index order.
type figure3Run struct {
	Deviation   float64
	RatioToCent float64
}

// Figure3 runs each configuration Runs times, letting the decentralized
// protocol run for StepsPerMachine exchanges per machine from a random
// initial distribution, and collects the final (dynamic equilibrium)
// makespans.
func Figure3(cfgs []SimConfig) []Figure3Result {
	return must(Figure3With(harness.Options{}, cfgs))
}

// Figure3With is Figure3 with explicit harness options. Each run draws its
// instance, initial placement and engine seed from the substream keyed by
// (cfg.Seed, run index), so run r's final makespan is a function of r alone
// — not of how many runs preceded it or on which worker it executed.
func Figure3With(opt harness.Options, cfgs []SimConfig) ([]Figure3Result, error) {
	out := make([]Figure3Result, 0, len(cfgs))
	for _, cfg := range cfgs {
		cfg := cfg
		runs, err := harness.Map(opt, cfg.Seed, cfg.Runs, func(rep *harness.Rep) (figure3Run, error) {
			gen := rep.RNG
			inst := cfg.build(gen)
			a := randomInitial(gen, inst.model)
			e := newEngine(inst, a, gen.Uint64())
			e.Run(cfg.StepsPerMachine*cfg.Machines(), false)
			cm := float64(a.Makespan())
			return figure3Run{
				Deviation:   (cm - inst.lb) / float64(inst.pmax),
				RatioToCent: cm / float64(inst.cent),
			}, nil
		})
		if err != nil {
			return nil, err
		}
		res := Figure3Result{Config: cfg}
		for _, r := range runs {
			res.Deviations = append(res.Deviations, r.Deviation)
			res.RatioToCent = append(res.RatioToCent, r.RatioToCent)
		}
		res.Summary = stats.Summarize(res.Deviations)
		out = append(out, res)
	}
	return out, nil
}

// Histogram bins a result's deviations for plotting; lo/hi/bins choose the
// binning (the paper's axis spans roughly [0, 2]).
func (r Figure3Result) Histogram(lo, hi float64, bins int) *stats.Histogram {
	h := stats.NewHistogram(lo, hi, bins)
	for _, d := range r.Deviations {
		h.Add(d)
	}
	return h
}
