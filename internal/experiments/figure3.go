package experiments

import (
	"hetlb/internal/rng"
	"hetlb/internal/stats"
)

// Figure3Result holds one configuration's equilibrium makespan sample
// (Figure 3 of the paper compares the heterogeneous distribution to the
// homogeneous one).
type Figure3Result struct {
	Config SimConfig
	// Deviations are the final makespans of each run expressed on the
	// Figure 2 axis: (Cmax − reference)/pmax, where the reference is the
	// fractional lower bound (two clusters) or ⌈ΣP/m⌉ (one cluster).
	Deviations []float64
	// RatioToCent are the final makespans divided by the centralized
	// reference schedule (CLB2C resp. LPT).
	RatioToCent []float64
	// Summary summarizes Deviations.
	Summary stats.Summary
}

// Figure3 runs each configuration Runs times, letting the decentralized
// protocol run for StepsPerMachine exchanges per machine from a random
// initial distribution, and collects the final (dynamic equilibrium)
// makespans.
func Figure3(cfgs []SimConfig) []Figure3Result {
	out := make([]Figure3Result, 0, len(cfgs))
	for _, cfg := range cfgs {
		gen := rng.New(cfg.Seed)
		res := Figure3Result{Config: cfg}
		for run := 0; run < cfg.Runs; run++ {
			inst := cfg.build(gen)
			a := randomInitial(gen, inst.model)
			e := newEngine(inst, a, gen.Uint64())
			e.Run(cfg.StepsPerMachine*cfg.Machines(), false)
			cm := float64(a.Makespan())
			res.Deviations = append(res.Deviations, (cm-inst.lb)/float64(inst.pmax))
			res.RatioToCent = append(res.RatioToCent, cm/float64(inst.cent))
		}
		res.Summary = stats.Summarize(res.Deviations)
		out = append(out, res)
	}
	return out
}

// Histogram bins a result's deviations for plotting; lo/hi/bins choose the
// binning (the paper's axis spans roughly [0, 2]).
func (r Figure3Result) Histogram(lo, hi float64, bins int) *stats.Histogram {
	h := stats.NewHistogram(lo, hi, bins)
	for _, d := range r.Deviations {
		h.Add(d)
	}
	return h
}
