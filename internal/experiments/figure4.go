package experiments

import (
	"fmt"

	"hetlb/internal/harness"
	"hetlb/internal/plot"
	"hetlb/internal/trace"
)

// Figure4Run is one makespan trajectory (Figure 4 of the paper shows that
// runs quickly reach a plateau and oscillate around it without converging).
type Figure4Run struct {
	Config SimConfig
	Run    int
	// ExchangesPerMachine is the x axis: step/machines at each sample.
	ExchangesPerMachine []float64
	// MakespanOverCent is Cmax normalized by the centralized reference so
	// heterogeneous and homogeneous runs share an axis.
	MakespanOverCent []float64
	// MinReached is the best normalized makespan seen during the run.
	MinReached float64
	// FinalOscillation is (max − min) of the normalized makespan over the
	// last quarter of the run — the amplitude of the equilibrium
	// oscillation.
	FinalOscillation float64
}

// Figure4 records runsPerCfg trajectories per configuration, sampling the
// makespan every machine-count steps (≈ once per "exchange per machine").
func Figure4(cfgs []SimConfig, runsPerCfg int) []Figure4Run {
	return must(Figure4With(harness.Options{}, cfgs, runsPerCfg))
}

// Figure4With is Figure4 with explicit harness options. Trajectory r of a
// configuration is keyed by (cfg.Seed+1000, r) and recorded in index order.
func Figure4With(opt harness.Options, cfgs []SimConfig, runsPerCfg int) ([]Figure4Run, error) {
	var out []Figure4Run
	for _, cfg := range cfgs {
		cfg := cfg
		runs, err := harness.Map(opt, cfg.Seed+1000, runsPerCfg, func(rep *harness.Rep) (Figure4Run, error) {
			gen := rep.RNG
			inst := cfg.build(gen)
			a := randomInitial(gen, inst.model)
			e := newEngine(inst, a, gen.Uint64())
			rec := &trace.MakespanSeries{SampleEvery: cfg.Machines()}
			e.Observe(rec)
			e.Run(cfg.StepsPerMachine*cfg.Machines(), false)
			fr := Figure4Run{Config: cfg, Run: rep.Index}
			cent := float64(inst.cent)
			for k, v := range rec.Values {
				fr.ExchangesPerMachine = append(fr.ExchangesPerMachine,
					float64(rec.Steps[k])/float64(cfg.Machines()))
				fr.MakespanOverCent = append(fr.MakespanOverCent, float64(v)/cent)
			}
			fr.MinReached = float64(rec.Min()) / cent
			fr.FinalOscillation = oscillation(fr.MakespanOverCent)
			return fr, nil
		})
		if err != nil {
			return nil, err
		}
		out = append(out, runs...)
	}
	return out, nil
}

// oscillation returns max−min over the last quarter of the series.
func oscillation(ys []float64) float64 {
	if len(ys) == 0 {
		return 0
	}
	start := len(ys) * 3 / 4
	lo, hi := ys[start], ys[start]
	for _, v := range ys[start:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}

// Figure4Series converts runs into plot series.
func Figure4Series(runs []Figure4Run) []plot.Series {
	out := make([]plot.Series, 0, len(runs))
	for _, r := range runs {
		out = append(out, plot.NewSeries(
			fmt.Sprintf("%s run %d", r.Config.Name, r.Run),
			r.ExchangesPerMachine, r.MakespanOverCent))
	}
	return out
}
