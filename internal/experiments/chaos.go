package experiments

import (
	"fmt"

	"hetlb/internal/central"
	"hetlb/internal/faults"
	"hetlb/internal/harness"
	"hetlb/internal/netsim"
	"hetlb/internal/obs/span"
	"hetlb/internal/plot"
	"hetlb/internal/protocol"
	"hetlb/internal/rng"
)

// ChaosConfig parameterizes the graceful-degradation sweep: the two-cluster
// workload balanced by DLB2C over the message-passing runtime while the
// network loses and duplicates messages and machines crash. Each (loss rate,
// crash count) cell runs Runs independent replications.
type ChaosConfig struct {
	// System: M1+M2 machines, Jobs jobs with costs U[1, CostHi] per cluster.
	M1, M2, Jobs int
	CostHi       int
	// LossRates are the per-message drop probabilities swept (each in
	// [0, 1)); CrashCounts the number of scheduled crashes swept.
	LossRates   []float64
	CrashCounts []int
	// DupProb and JitterMax apply to every cell with a lossy network
	// (LossRate > 0); zero-loss cells keep a perfect network so the first
	// column is a clean reference.
	DupProb   float64
	JitterMax int64
	// Crash shape: each crash lasts about MeanDown time units and loses the
	// machine's jobs with probability LoseProb (otherwise they are re-hosted
	// on recovery).
	MeanDown int64
	LoseProb float64
	// Network and run shape.
	Latency, Period, Horizon int64
	// Threshold defines convergence: the first sampled virtual time whose
	// Cmax is within Threshold × the centralized CLB2C makespan of the same
	// instance (e.g. 1.1 = within 10%).
	Threshold float64
	// Runs is the number of replications per cell; Seed keys everything.
	Runs int
	Seed uint64
}

// PaperChaos returns the default degradation sweep on the paper's small
// heterogeneous system.
func PaperChaos() ChaosConfig {
	return ChaosConfig{
		M1: 8, M2: 4, Jobs: 96, CostHi: 100,
		LossRates:   []float64{0, 0.05, 0.15, 0.3},
		CrashCounts: []int{0, 2, 4},
		DupProb:     0.05, JitterMax: 3,
		MeanDown: 150, LoseProb: 0.5,
		Latency: 2, Period: 10, Horizon: 2000,
		Threshold: 1.1,
		Runs:      20, Seed: 11,
	}
}

// Reduced scales the sweep down for tests.
func (c ChaosConfig) Reduced() ChaosConfig {
	r := c
	r.LossRates = []float64{0, 0.2}
	r.CrashCounts = []int{0, 2}
	r.Runs = 4
	r.Horizon = 800
	return r
}

// ChaosResult aggregates one (loss rate, crash count) cell.
type ChaosResult struct {
	LossRate float64
	Crashes  int
	// ConvergedFrac is the fraction of replications whose sampled Cmax
	// reached Threshold × central before the horizon; MeanConvergence is
	// their mean virtual time to get there.
	ConvergedFrac   float64
	MeanConvergence float64
	// MeanRatio is the mean final Cmax / central CLB2C Cmax (jobs lost to
	// crashes excluded from Cmax, so it can dip below 1 under heavy loss).
	MeanRatio float64
	// Degradation accounting, averaged per replication.
	MeanRetransmissions, MeanTimeouts, MeanJobsLost float64
}

// chaosRun is one replication's raw outcome.
type chaosRun struct {
	ConvergedAt int64 // -1 when the threshold was never reached
	Ratio       float64
	Retrans     int
	Timeouts    int
	JobsLost    int
}

// Chaos runs the degradation sweep sequentially.
func Chaos(cfg ChaosConfig) ([]ChaosResult, error) {
	return ChaosWith(harness.Options{}, cfg)
}

// ChaosWith is Chaos with explicit harness options. Cell (loss, crashes) is
// keyed by rng.DeriveSeed(cfg.Seed, cell index), so adding or removing cells
// does not disturb the others and results are bit-identical for any worker
// count.
func ChaosWith(opt harness.Options, cfg ChaosConfig) ([]ChaosResult, error) {
	if cfg.Runs <= 0 {
		return nil, fmt.Errorf("experiments: chaos Runs must be positive")
	}
	if cfg.Threshold < 1 {
		return nil, fmt.Errorf("experiments: chaos Threshold must be >= 1")
	}
	// One shared instrument set: the netsim_* counters and histograms
	// aggregate over every replication of the sweep (counter adds commute,
	// so the totals are worker-count independent).
	var met *netsim.Metrics
	if opt.Metrics != nil {
		met = netsim.NewMetrics(opt.Metrics)
	}
	out := make([]ChaosResult, 0, len(cfg.LossRates)*len(cfg.CrashCounts))
	cell := 0
	for _, loss := range cfg.LossRates {
		for _, crashes := range cfg.CrashCounts {
			loss, crashes := loss, crashes
			cellSeed := rng.DeriveSeed(cfg.Seed, uint64(cell))
			// One KindSweep span per cell: the cell's replication spans hang
			// under it (A = cell index, Start/End = cell index, Value encodes
			// the crash count; the loss rate is recoverable from the config).
			var sweep span.ID
			if opt.Spans != nil {
				sweep = opt.Spans.Append(span.Span{
					Kind:  span.KindSweep,
					A:     int32(cell),
					B:     -1,
					Start: int64(cell),
					End:   int64(cell),
					Value: int64(crashes),
				})
				opt.Spans.SetRoot(sweep)
			}
			cell++
			rs, err := harness.Map(opt, cellSeed, cfg.Runs, func(rep *harness.Rep) (chaosRun, error) {
				return chaosReplication(rep, cfg, loss, crashes, met)
			})
			if opt.Spans != nil {
				opt.Spans.SetRoot(0)
			}
			if err != nil {
				return nil, err
			}
			agg := ChaosResult{LossRate: loss, Crashes: crashes}
			converged := 0
			for _, r := range rs {
				if r.ConvergedAt >= 0 {
					converged++
					agg.MeanConvergence += float64(r.ConvergedAt)
				}
				agg.MeanRatio += r.Ratio
				agg.MeanRetransmissions += float64(r.Retrans)
				agg.MeanTimeouts += float64(r.Timeouts)
				agg.MeanJobsLost += float64(r.JobsLost)
			}
			if converged > 0 {
				agg.MeanConvergence /= float64(converged)
			}
			agg.ConvergedFrac = float64(converged) / float64(cfg.Runs)
			agg.MeanRatio /= float64(cfg.Runs)
			agg.MeanRetransmissions /= float64(cfg.Runs)
			agg.MeanTimeouts /= float64(cfg.Runs)
			agg.MeanJobsLost /= float64(cfg.Runs)
			out = append(out, agg)
		}
	}
	return out, nil
}

// chaosReplication simulates one instance of a cell.
func chaosReplication(rep *harness.Rep, cfg ChaosConfig, loss float64, crashes int, met *netsim.Metrics) (chaosRun, error) {
	gen := rep.RNG
	tc := coreTwoCluster(gen, SimConfig{M1: cfg.M1, M2: cfg.M2, Jobs: cfg.Jobs, CostLo: 1, CostHi: int64(cfg.CostHi)})
	cent := central.RunCLB2C(tc).Makespan()
	initial := randomInitial(gen, tc)

	fc := faults.Config{DropProb: loss}
	if loss > 0 {
		fc.DupProb, fc.JitterMax = cfg.DupProb, cfg.JitterMax
	}
	if crashes > 0 {
		fc.Crashes = faults.RandomCrashes(gen.Uint64(), tc.NumMachines(), cfg.Horizon, crashes, cfg.MeanDown, cfg.LoseProb)
	}
	var fp *faults.Config
	if !fc.Zero() {
		fp = &fc
	}
	sim, err := netsim.New(tc, protocol.DLB2C{Model: tc}, initial, netsim.Config{
		Seed:    gen.Uint64(),
		Latency: cfg.Latency,
		Period:  cfg.Period,
		Horizon: cfg.Horizon,
		Faults:  fp,
		Metrics: met,
		Spans:   rep.Spans,
	})
	if err != nil {
		return chaosRun{}, err
	}
	st := sim.Run()
	if err := sim.ValidateConservation(); err != nil {
		return chaosRun{}, err
	}
	goal := int64(float64(cent) * cfg.Threshold)
	conv := int64(-1)
	for k, c := range st.Makespans {
		if int64(c) <= goal {
			conv = st.Times[k]
			break
		}
	}
	return chaosRun{
		ConvergedAt: conv,
		Ratio:       float64(st.FinalMakespan) / float64(cent),
		Retrans:     st.Retransmissions,
		Timeouts:    st.Timeouts,
		JobsLost:    st.JobsLost,
	}, nil
}

// ChaosTable renders the sweep as a text table.
func ChaosTable(results []ChaosResult) string {
	rows := make([][]string, 0, len(results))
	for _, r := range results {
		conv := "never"
		if r.ConvergedFrac > 0 {
			conv = fmt.Sprintf("%.0f", r.MeanConvergence)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.0f%%", r.LossRate*100),
			fmt.Sprint(r.Crashes),
			fmt.Sprintf("%.2f", r.ConvergedFrac),
			conv,
			fmt.Sprintf("%.3f", r.MeanRatio),
			fmt.Sprintf("%.1f", r.MeanRetransmissions),
			fmt.Sprintf("%.1f", r.MeanJobsLost),
		})
	}
	return plot.Table([]string{"loss", "crashes", "converged", "mean conv time", "Cmax/central", "retransmissions", "jobs lost"}, rows)
}

// ChaosSeries renders, per crash count, convergence time against loss rate
// (cells that never converged are plotted at the horizon).
func ChaosSeries(results []ChaosResult, horizon int64) []plot.Series {
	byCrash := map[int][]ChaosResult{}
	var order []int
	for _, r := range results {
		if _, ok := byCrash[r.Crashes]; !ok {
			order = append(order, r.Crashes)
		}
		byCrash[r.Crashes] = append(byCrash[r.Crashes], r)
	}
	var out []plot.Series
	for _, c := range order {
		var xs, ys []float64
		for _, r := range byCrash[c] {
			xs = append(xs, r.LossRate)
			y := float64(horizon)
			if r.ConvergedFrac > 0 {
				y = r.MeanConvergence
			}
			ys = append(ys, y)
		}
		out = append(out, plot.NewSeries(fmt.Sprintf("%d crashes", c), xs, ys))
	}
	return out
}
