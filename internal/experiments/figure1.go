package experiments

import (
	"hetlb/internal/core"
	"hetlb/internal/harness"
	"hetlb/internal/protocol"
	"hetlb/internal/workload"
)

// Figure1Result demonstrates Proposition 8 on the workload.CycleInstance.
type Figure1Result struct {
	// ReachableStates is the number of schedules reachable from the
	// initial distribution under any pairwise balancing sequence.
	ReachableStates int
	// StableStates counts reachable fixed points (0 proves that DLB2C can
	// never converge from this start).
	StableStates int
	// ProvenNonConvergent is true when the enumeration was exhaustive and
	// found no stable state.
	ProvenNonConvergent bool
	// CycleMakespans are the makespans along one explicit balancing cycle
	// S0 → S1 → ... → S0 (the paper's Figures 1(a)–(c)).
	CycleMakespans []core.Cost
	// CycleStates are the job placements along the cycle, rendered by
	// Assignment.String.
	CycleStates []string
	// MinMakespan and MaxMakespan over all reachable schedules.
	MinMakespan, MaxMakespan core.Cost
}

// Figure1 enumerates the reachable schedule space of the cycling instance
// and extracts an explicit cycle.
func Figure1() Figure1Result {
	return must(Figure1With(harness.Options{}))
}

// Figure1With is Figure1 with explicit harness options. The enumeration is
// one deterministic replication; routing it through the harness buys the
// deadline/cancellation contract and the shared instrumentation, not
// parallelism.
func Figure1With(opt harness.Options) (Figure1Result, error) {
	out, err := harness.Map(opt, 0, 1, func(rep *harness.Rep) (Figure1Result, error) {
		tc, start := workload.CycleInstance()
		proto := protocol.DLB2C{Model: tc}
		r := protocol.Explore(proto, start, 100000)
		res := Figure1Result{
			ReachableStates:     r.States,
			StableStates:        r.StableStates,
			ProvenNonConvergent: r.ProvesNonConvergence(),
			MinMakespan:         r.MinMakespan,
			MaxMakespan:         r.MaxMakespan,
		}
		for _, s := range protocol.FindCycle(proto, start, 100000) {
			res.CycleMakespans = append(res.CycleMakespans, s.Makespan())
			res.CycleStates = append(res.CycleStates, s.String())
		}
		return res, nil
	})
	if err != nil {
		return Figure1Result{}, err
	}
	return out[0], nil
}
