package experiments

import (
	"strings"
	"testing"

	"hetlb/internal/harness"
)

// The chaos sweep must be bit-identical across worker counts, and its
// faulty cells must actually exercise the degraded machinery.
func TestChaosDeterministicAcrossParallelism(t *testing.T) {
	cfg := PaperChaos().Reduced()
	ref := assertInvariant(t, "Chaos", func(opt harness.Options) ([]ChaosResult, error) {
		return ChaosWith(opt, cfg)
	})
	if len(ref) != len(cfg.LossRates)*len(cfg.CrashCounts) {
		t.Fatalf("got %d cells, want %d", len(ref), len(cfg.LossRates)*len(cfg.CrashCounts))
	}
	var sawRetrans, sawLost bool
	for _, r := range ref {
		if r.LossRate == 0 && r.Crashes == 0 {
			if r.MeanRetransmissions != 0 || r.MeanTimeouts != 0 || r.MeanJobsLost != 0 {
				t.Fatalf("fault-free cell reports degradation: %+v", r)
			}
			if r.ConvergedFrac == 0 {
				t.Fatal("fault-free cell never converged")
			}
		}
		if r.MeanRetransmissions > 0 {
			sawRetrans = true
		}
		if r.MeanJobsLost > 0 {
			sawLost = true
		}
	}
	if !sawRetrans {
		t.Error("no cell saw retransmissions — sweep not exercising loss")
	}
	if !sawLost {
		t.Error("no cell lost jobs — sweep not exercising crashes")
	}
	tab := ChaosTable(ref)
	if !strings.Contains(tab, "loss") || !strings.Contains(tab, "Cmax/central") {
		t.Errorf("table missing headers:\n%s", tab)
	}
	if s := ChaosSeries(ref, cfg.Horizon); len(s) != len(cfg.CrashCounts) {
		t.Errorf("ChaosSeries returned %d series, want %d", len(s), len(cfg.CrashCounts))
	}
}

func TestChaosRejectsBadConfig(t *testing.T) {
	cfg := PaperChaos()
	cfg.Runs = 0
	if _, err := Chaos(cfg); err == nil {
		t.Error("Runs=0 accepted")
	}
	cfg = PaperChaos()
	cfg.Threshold = 0.5
	if _, err := Chaos(cfg); err == nil {
		t.Error("Threshold<1 accepted")
	}
}
