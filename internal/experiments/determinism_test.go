package experiments

import (
	"math"
	"reflect"
	"runtime"
	"testing"

	"hetlb/internal/core"
	"hetlb/internal/harness"
)

// The harness determinism contract, asserted end to end: every refactored
// driver must produce byte-identical structured results for Parallelism 1,
// 4 and GOMAXPROCS, and the small fixed-seed configurations must match the
// pinned golden summaries below. If a refactor changes the numbers on
// purpose (new substream keying, different replication bodies), regenerate
// the goldens — but a change that appears here without an intentional cause
// is a scheduling leak into the results, the exact bug class the harness
// exists to prevent.

// parallelisms are the worker counts every driver is checked across.
func parallelisms() []harness.Options {
	return []harness.Options{
		{Parallelism: 1},
		{Parallelism: 4},
		{Parallelism: runtime.GOMAXPROCS(0)},
	}
}

// assertInvariant runs drive once per parallelism setting and requires
// deep-equal results.
func assertInvariant[T any](t *testing.T, name string, drive func(harness.Options) (T, error)) T {
	t.Helper()
	ref, err := drive(harness.Options{Parallelism: 1})
	if err != nil {
		t.Fatalf("%s sequential: %v", name, err)
	}
	for _, opt := range parallelisms()[1:] {
		got, err := drive(opt)
		if err != nil {
			t.Fatalf("%s parallelism %d: %v", name, opt.Parallelism, err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("%s: results differ between parallelism 1 and %d", name, opt.Parallelism)
		}
	}
	return ref
}

// exactly pins a float golden bit-for-bit: the determinism contract is
// bit-identity, not tolerance.
func exactly(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("%s = %.17g, golden %.17g", name, got, want)
	}
}

func TestTableIDeterministicAcrossParallelism(t *testing.T) {
	rows := assertInvariant(t, "TableI", func(opt harness.Options) ([]TableIRow, error) {
		return TableIWith(opt, []core.Cost{10, 100}, 1)
	})
	// Golden: the trap's shape is seed-independent (Theorem 1).
	for i, n := range []core.Cost{10, 100} {
		if rows[i].FirstSteal != int64(n) || rows[i].Makespan != int64(n)+1 || rows[i].Opt != 2 {
			t.Fatalf("row %d regressed: %+v", i, rows[i])
		}
	}
}

func TestTableIIDeterministicAcrossParallelism(t *testing.T) {
	assertInvariant(t, "TableII", func(opt harness.Options) ([]TableIIRow, error) {
		return TableIIWith(opt, []core.Cost{5, 50})
	})
}

func TestFigure1DeterministicAcrossParallelism(t *testing.T) {
	assertInvariant(t, "Figure1", func(opt harness.Options) (Figure1Result, error) {
		return Figure1With(opt)
	})
}

func TestFigure2DeterministicAcrossParallelism(t *testing.T) {
	assertInvariant(t, "Figure2a", func(opt harness.Options) ([]Figure2Curve, error) {
		return Figure2aWith(opt, []int64{2, 4})
	})
	assertInvariant(t, "Figure2b", func(opt harness.Options) ([]Figure2Curve, error) {
		return Figure2bWith(opt, []int{3, 4})
	})
}

func TestFigure3DeterministicAcrossParallelism(t *testing.T) {
	cfgs := []SimConfig{PaperHetero().Reduced(), PaperHomogeneous().Reduced()}
	results := assertInvariant(t, "Figure3", func(opt harness.Options) ([]Figure3Result, error) {
		return Figure3With(opt, cfgs)
	})
	// Pinned goldens for the reduced paper configurations (seeds 1 and 3).
	exactly(t, "hetero mean deviation", results[0].Summary.Mean, 0.32625848431910853)
	exactly(t, "hetero p90 deviation", results[0].Summary.P90, 0.38048152881504205)
	exactly(t, "homog mean deviation", results[1].Summary.Mean, 0.47909158378857941)
}

func TestFigure4DeterministicAcrossParallelism(t *testing.T) {
	cfgs := []SimConfig{PaperHetero().Reduced()}
	runs := assertInvariant(t, "Figure4", func(opt harness.Options) ([]Figure4Run, error) {
		return Figure4With(opt, cfgs, 2)
	})
	exactly(t, "run 0 min reached", runs[0].MinReached, 0.92589508742714399)
	exactly(t, "run 0 oscillation", runs[0].FinalOscillation, 0.0036081043574798244)
	if len(runs[0].MakespanOverCent) != 30 {
		t.Fatalf("trajectory length %d", len(runs[0].MakespanOverCent))
	}
}

func TestFigure5DeterministicAcrossParallelism(t *testing.T) {
	cfgs := []SimConfig{PaperHetero().Reduced()}
	results := assertInvariant(t, "Figure5", func(opt harness.Options) ([]Figure5Result, error) {
		return Figure5With(opt, cfgs, 1.5)
	})
	if results[0].CrossedRuns != 5 {
		t.Fatalf("crossed runs = %d, golden 5", results[0].CrossedRuns)
	}
	exactly(t, "mean per-machine exchanges", results[0].Summary.Mean, 3.0333333333333332)
}

func TestResidualDeterministicAcrossParallelism(t *testing.T) {
	res := assertInvariant(t, "ResidualCheck", func(opt harness.Options) (ResidualCheckResult, error) {
		return ResidualCheckWith(opt, 8, 64, 1, 100, 2000, 7)
	})
	if res.Samples != 2000 {
		t.Fatalf("samples = %d, golden 2000", res.Samples)
	}
	exactly(t, "residual mean", res.Summary.Mean, 0.26473706939832448)
	exactly(t, "residual zero share", res.ZeroShare, 0.030499999999999999)
}

func TestExtensionsDeterministicAcrossParallelism(t *testing.T) {
	assertInvariant(t, "ExtKClusters", func(opt harness.Options) ([]ExtKClustersResult, error) {
		return ExtKClustersWith(opt, []int{2, 3}, 3, 72, 50, 3, 20, 5)
	})
	assertInvariant(t, "ExtDynamic", func(opt harness.Options) ([]ExtDynamicResult, error) {
		return ExtDynamicWith(opt, []int64{0, 5}, 3, 3, 60, 50, 1, 3, 6)
	})
}

// TestRunResultDependsOnlyOnItsIndex is the satellite fix made observable:
// shrinking a configuration's run count must not change the runs that
// remain. Under the old serial seed draw, run r consumed state left by runs
// 0..r-1, so any change to the run count rewrote every result.
func TestRunResultDependsOnlyOnItsIndex(t *testing.T) {
	cfg := PaperHetero().Reduced()
	long := must(Figure3With(harness.Sequential(), []SimConfig{cfg}))[0]
	short := cfg
	short.Runs = 2
	got := must(Figure3With(harness.Sequential(), []SimConfig{short}))[0]
	for i := 0; i < short.Runs; i++ {
		exactly(t, "prefix deviation", got.Deviations[i], long.Deviations[i])
		exactly(t, "prefix ratio", got.RatioToCent[i], long.RatioToCent[i])
	}
}
