package experiments

import (
	"hetlb/internal/core"
	"hetlb/internal/gossip"
	"hetlb/internal/harness"
	"hetlb/internal/protocol"
	"hetlb/internal/stats"
)

// ResidualCheck validates the central modelling assumption of the paper's
// Markov analysis (Section VII.A): that after a pair balances, the residual
// imbalance is "uniformly chosen in {0, ..., pmax}". It runs the actual
// same-cost kernel on a homogeneous system and records, for every step that
// had jobs to balance, the pair's post-balance imbalance normalized by the
// largest pooled job.
type ResidualCheckResult struct {
	// Samples is the number of balancing steps measured.
	Samples int
	// Normalized holds |load_i − load_j| / pmax_pool per step (in [0, 1]).
	Normalized []float64
	// Summary of Normalized: a perfectly uniform residual would have mean
	// 0.5 and be flat; the measured distribution tells how faithful the
	// abstraction is.
	Summary stats.Summary
	// ZeroShare is the fraction of steps ending perfectly balanced.
	ZeroShare float64
}

type residualObserver struct {
	res *ResidualCheckResult
}

func (o *residualObserver) OnStep(e gossip.Stepper, step, i, j int) {
	// The observer is only ever attached to the sequential engine, whose
	// live assignment it needs for per-pair pooled costs.
	a := e.(*gossip.Engine).Assignment()
	var pmax core.Cost
	for job := 0; job < a.Model().NumJobs(); job++ {
		if m := a.MachineOf(job); m == i || m == j {
			if c := a.Model().Cost(m, job); c > pmax {
				pmax = c
			}
		}
	}
	if pmax == 0 {
		return // nothing pooled
	}
	d := a.Load(i) - a.Load(j)
	if d < 0 {
		d = -d
	}
	o.res.Samples++
	norm := float64(d) / float64(pmax)
	o.res.Normalized = append(o.res.Normalized, norm)
	if d == 0 {
		o.res.ZeroShare++
	}
}

// ResidualCheck runs the measurement on a uniform homogeneous system.
func ResidualCheck(m, jobs int, costLo, costHi core.Cost, steps int, seed uint64) ResidualCheckResult {
	return must(ResidualCheckWith(harness.Options{}, m, jobs, costLo, costHi, steps, seed))
}

// ResidualCheckWith is ResidualCheck with explicit harness options; the
// measurement is one replication.
func ResidualCheckWith(opt harness.Options, m, jobs int, costLo, costHi core.Cost, steps int, seed uint64) (ResidualCheckResult, error) {
	out, err := harness.Map(opt, seed, 1, func(rep *harness.Rep) (ResidualCheckResult, error) {
		gen := rep.RNG
		sizes := make([]core.Cost, jobs)
		for j := range sizes {
			sizes[j] = gen.IntRange(costLo, costHi)
		}
		id, err := core.NewIdentical(m, sizes)
		if err != nil {
			panic(err)
		}
		a := core.NewAssignment(id)
		for j := 0; j < jobs; j++ {
			a.Assign(j, gen.Intn(m))
		}
		res := ResidualCheckResult{}
		obs := &residualObserver{res: &res}
		e := gossip.New(protocol.SameCost{Model: id}, a, gossip.Config{Seed: gen.Uint64()})
		e.Observe(obs)
		e.Run(steps, false)
		if res.Samples > 0 {
			res.ZeroShare /= float64(res.Samples)
		}
		res.Summary = stats.Summarize(res.Normalized)
		return res, nil
	})
	if err != nil {
		return ResidualCheckResult{}, err
	}
	return out[0], nil
}
