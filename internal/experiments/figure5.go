package experiments

import (
	"sort"

	"hetlb/internal/core"
	"hetlb/internal/harness"
	"hetlb/internal/plot"
	"hetlb/internal/stats"
	"hetlb/internal/trace"
)

// Figure5Result is one configuration's "time to reach 1.5× the centralized
// makespan" study. The paper reports the distribution, over machines, of
// the number of pairwise exchanges each machine had participated in when
// the system's makespan first dropped below the threshold — normalized so
// that "5 exchanges per machine" is comparable across system sizes.
type Figure5Result struct {
	Config SimConfig
	// Threshold factor relative to the centralized reference (1.5 in the
	// paper).
	Factor float64
	// PerMachineExchanges collects, over all runs and machines, each
	// machine's exchange count at the first crossing.
	PerMachineExchanges []float64
	// CrossedRuns / TotalRuns report how many runs reached the threshold
	// within the budget at all.
	CrossedRuns, TotalRuns int
	// GlobalStepsPerMachine collects, per crossed run, the total step
	// count at crossing divided by the machine count.
	GlobalStepsPerMachine []float64
	// Summary summarizes PerMachineExchanges.
	Summary stats.Summary
}

// figure5Run is one replication's contribution, merged in index order.
type figure5Run struct {
	Crossed bool
	// PerMachine holds each machine's exchange count at the first crossing
	// (all zeros when the run started below the threshold).
	PerMachine []float64
	// Global is the run's total step count at crossing divided by the
	// machine count; HasGlobal reports whether it is meaningful.
	Global    float64
	HasGlobal bool
}

// Figure5 measures time-to-threshold for each configuration.
func Figure5(cfgs []SimConfig, factor float64) []Figure5Result {
	return must(Figure5With(harness.Options{}, cfgs, factor))
}

// Figure5With is Figure5 with explicit harness options; run r of a
// configuration is keyed by (cfg.Seed+2000, r).
func Figure5With(opt harness.Options, cfgs []SimConfig, factor float64) ([]Figure5Result, error) {
	out := make([]Figure5Result, 0, len(cfgs))
	for _, cfg := range cfgs {
		cfg := cfg
		runs, err := harness.Map(opt, cfg.Seed+2000, cfg.Runs, func(rep *harness.Rep) (figure5Run, error) {
			gen := rep.RNG
			inst := cfg.build(gen)
			a := randomInitial(gen, inst.model)
			threshold := core.Cost(factor * float64(inst.cent))
			w := &trace.ThresholdWatcher{Threshold: threshold}
			e := newEngine(inst, a, gen.Uint64())
			e.Observe(w)
			if a.Makespan() <= threshold {
				// Already below at start: every machine needed 0
				// exchanges (the paper notes this is common in the
				// homogeneous case).
				return figure5Run{
					Crossed:    true,
					PerMachine: make([]float64, cfg.Machines()),
					HasGlobal:  true,
				}, nil
			}
			e.Run(cfg.StepsPerMachine*cfg.Machines(), false)
			if !w.Crossed {
				return figure5Run{}, nil
			}
			r := figure5Run{Crossed: true}
			for _, c := range w.ExchangesAtCross {
				r.PerMachine = append(r.PerMachine, float64(c))
			}
			r.Global, r.HasGlobal = w.ExchangesPerMachine(cfg.Machines())
			return r, nil
		})
		if err != nil {
			return nil, err
		}
		res := Figure5Result{Config: cfg, Factor: factor, TotalRuns: cfg.Runs}
		for _, r := range runs {
			if !r.Crossed {
				continue
			}
			res.CrossedRuns++
			res.PerMachineExchanges = append(res.PerMachineExchanges, r.PerMachine...)
			if r.HasGlobal {
				res.GlobalStepsPerMachine = append(res.GlobalStepsPerMachine, r.Global)
			}
		}
		res.Summary = stats.Summarize(res.PerMachineExchanges)
		out = append(out, res)
	}
	return out, nil
}

// CDFSeries renders each configuration's per-machine exchange counts as an
// empirical CDF (the Figure 5 axes: x = exchanges per machine, y = fraction
// of machines that had reached the threshold by then).
func Figure5CDFSeries(results []Figure5Result) []plot.Series {
	out := make([]plot.Series, 0, len(results))
	for _, r := range results {
		xs := append([]float64(nil), r.PerMachineExchanges...)
		sort.Float64s(xs)
		var px, py []float64
		n := float64(len(xs))
		for k, x := range xs {
			if k > 0 && x == xs[k-1] {
				py[len(py)-1] = float64(k+1) / n
				continue
			}
			px = append(px, x)
			py = append(py, float64(k+1)/n)
		}
		out = append(out, plot.NewSeries(r.Config.Name, px, py))
	}
	return out
}
