// Package experiments contains one driver per table and figure of the
// paper's evaluation. Each driver is deterministic given its configuration,
// returns structured results, and can render itself as plot series and text
// so cmd/figures can regenerate the full evaluation. The drivers accept
// scaled-down parameters for tests; the Paper* config constructors return
// the exact parameters used in the paper.
//
// Index (see DESIGN.md for the full mapping):
//
//	Table I    — work stealing unbounded ratio (Theorem 1)
//	Table II   — pairwise-optimal trap (Proposition 2)
//	Figure 1   — DLB2C non-convergence cycle (Proposition 8)
//	Figure 2a  — stationary makespan pdf, m=6, varying pmax
//	Figure 2b  — stationary makespan pdf, pmax=4, varying m
//	Figure 3   — simulated equilibrium makespan distribution, 2 clusters vs 1
//	Figure 4   — makespan trajectories over exchanges
//	Figure 5   — exchanges per machine to first reach 1.5× CLB2C
package experiments

import (
	"hetlb/internal/core"
	"hetlb/internal/exact"
	"hetlb/internal/harness"
	"hetlb/internal/workload"
	"hetlb/internal/worksteal"
)

// Every driver in this package executes its replications through
// harness.Map: one keyed RNG substream per replication, results addressed by
// index, optional worker-pool parallelism. The plain constructors
// (TableI, Figure3, ...) run with harness defaults; the *With variants take
// harness.Options so callers (cmd/figures, `hetlb figures`, tests) can set
// parallelism, deadlines and observability. A driver's output is identical
// for every Options.Parallelism — see determinism_test.go.

// must surfaces harness errors in the plain wrappers. Their replication
// bodies cannot fail and they pass no cancellable context, so an error here
// is a programming bug, not an operational condition.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// TableIRow is one n column of Table I's reproduction: the behaviour of
// work stealing on the trap instance.
type TableIRow struct {
	// N is the trap parameter (cost of a job on its trap machine).
	N core.Cost
	// FirstSteal is when the first successful steal happened.
	FirstSteal int64
	// Makespan is the work-stealing completion time.
	Makespan int64
	// Opt is the optimal makespan (always 2 on this instance).
	Opt core.Cost
	// Ratio is Makespan/Opt — grows linearly in N (Theorem 1).
	Ratio float64
}

// TableI reproduces Theorem 1: for each n it runs work stealing from the
// circled distribution of Table I and reports the first steal time and the
// achieved makespan against the optimum.
func TableI(ns []core.Cost, seed uint64) []TableIRow {
	return must(TableIWith(harness.Options{}, ns, seed))
}

// TableIWith is TableI with explicit harness options; each n column is one
// replication.
func TableIWith(opt harness.Options, ns []core.Cost, seed uint64) ([]TableIRow, error) {
	return harness.Map(opt, seed, len(ns), func(rep *harness.Rep) (TableIRow, error) {
		n := ns[rep.Index]
		d, init := workload.WorkStealingTrap(n)
		sim, err := worksteal.New(d, init, worksteal.Config{Seed: rep.RNG.Uint64()})
		if err != nil {
			panic(err) // static instance; cannot fail
		}
		st := sim.Run()
		opt := exact.Solve(d).Opt
		return TableIRow{
			N:          n,
			FirstSteal: st.FirstStealTime,
			Makespan:   st.Makespan,
			Opt:        opt,
			Ratio:      float64(st.Makespan) / float64(opt),
		}, nil
	})
}

// TableIIRow is one n column of the Table II reproduction.
type TableIIRow struct {
	// N is the trap parameter.
	N core.Cost
	// TrapMakespan is the makespan of the pairwise-stable circled
	// distribution (= N).
	TrapMakespan core.Cost
	// Opt is the optimal makespan (always 1).
	Opt core.Cost
	// PairwiseOptimal reports that no pair of machines can improve its
	// local makespan by any redistribution of its pooled jobs.
	PairwiseOptimal bool
}

// TableII reproduces Proposition 2: the circled distribution of Table II is
// optimally balanced for every machine pair yet its makespan is unbounded
// relative to OPT.
func TableII(ns []core.Cost) []TableIIRow {
	return must(TableIIWith(harness.Options{}, ns))
}

// TableIIWith is TableII with explicit harness options. The driver is fully
// deterministic (no randomness), so the harness contributes only the worker
// pool: the pairwise-optimality exhaustion per column is exponential in the
// pooled job count and dominates the run.
func TableIIWith(opt harness.Options, ns []core.Cost) ([]TableIIRow, error) {
	return harness.Map(opt, 0, len(ns), func(rep *harness.Rep) (TableIIRow, error) {
		n := ns[rep.Index]
		d, trap := workload.PairwiseTrap(n)
		return TableIIRow{
			N:               n,
			TrapMakespan:    trap.Makespan(),
			Opt:             exact.Solve(d).Opt,
			PairwiseOptimal: pairwiseOptimal(d, trap),
		}, nil
	})
}

// pairwiseOptimal checks by exhaustion that no pair of machines can lower
// the maximum of their two loads by re-splitting their pooled jobs.
func pairwiseOptimal(m core.CostModel, a *core.Assignment) bool {
	mm := m.NumMachines()
	for m1 := 0; m1 < mm; m1++ {
		for m2 := m1 + 1; m2 < mm; m2++ {
			var jobs []int
			for j := 0; j < m.NumJobs(); j++ {
				if i := a.MachineOf(j); i == m1 || i == m2 {
					jobs = append(jobs, j)
				}
			}
			cur := a.Load(m1)
			if l2 := a.Load(m2); l2 > cur {
				cur = l2
			}
			best := cur
			for mask := 0; mask < 1<<len(jobs); mask++ {
				var l1, l2 core.Cost
				for b, j := range jobs {
					if mask&(1<<b) != 0 {
						l1 += m.Cost(m1, j)
					} else {
						l2 += m.Cost(m2, j)
					}
				}
				v := l1
				if l2 > v {
					v = l2
				}
				if v < best {
					best = v
				}
			}
			if best < cur {
				return false
			}
		}
	}
	return true
}
