package experiments

import (
	"fmt"

	"hetlb/internal/harness"
	"hetlb/internal/markov"
	"hetlb/internal/plot"
)

// Figure2Curve is one stationary makespan distribution of Figure 2.
type Figure2Curve struct {
	// M and PMax identify the configuration; Total is ΣP (chosen as the
	// smallest value for which the Theorem 10 bound is attainable, as in
	// the paper).
	M     int
	PMax  int64
	Total int64
	// X is the normalized deviation (Cmax − ⌈ΣP/m⌉)/pmax; P the
	// stationary probability mass at each deviation.
	X []float64
	P []float64
	// States is the sink-component size; Iterations the power-iteration
	// count.
	States     int
	Iterations int
	// Mode is the deviation carrying the largest mass (≈ 0.5 in the
	// paper); TailBeyond15 is the mass beyond deviation 1.5 (≈ 0).
	Mode         float64
	TailBeyond15 float64
}

// figure2Curve computes one configuration.
func figure2Curve(m int, pmax int64) (Figure2Curve, error) {
	total := markov.MinimumTotalForBound(m, pmax)
	chain, err := markov.Build(m, pmax, total)
	if err != nil {
		return Figure2Curve{}, err
	}
	pi, iters := chain.Stationary(1e-11, 20000)
	values, probs := chain.MakespanDistribution(pi)
	c := Figure2Curve{
		M: m, PMax: pmax, Total: total,
		States: chain.NumStates(), Iterations: iters,
	}
	mode := 0
	for k, v := range values {
		x := chain.NormalizedDeviation(v)
		c.X = append(c.X, x)
		c.P = append(c.P, probs[k])
		if probs[k] > probs[mode] {
			mode = k
		}
		if x > 1.5 {
			c.TailBeyond15 += probs[k]
		}
	}
	c.Mode = chain.NormalizedDeviation(values[mode])
	return c, nil
}

// Figure2a reproduces Figure 2(a): m = 6 machines, varying pmax. The
// paper's values are {2, 4, 8, 16}; pmax = 16 expands to ~1.8M states and
// several minutes of compute, so callers choose which subset to run.
func Figure2a(pmaxes []int64) ([]Figure2Curve, error) {
	return Figure2aWith(harness.Options{}, pmaxes)
}

// Figure2aWith is Figure2a with explicit harness options. Each pmax curve
// is one (deterministic) replication; the chains grow steeply with pmax, so
// running the curves on the worker pool overlaps the cheap ones with the
// expensive one.
func Figure2aWith(opt harness.Options, pmaxes []int64) ([]Figure2Curve, error) {
	return harness.Map(opt, 0, len(pmaxes), func(rep *harness.Rep) (Figure2Curve, error) {
		return figure2Curve(6, pmaxes[rep.Index])
	})
}

// Figure2b reproduces Figure 2(b): pmax = 4, varying machine count
// (the paper uses m ∈ {3, 4, 5, 6}).
func Figure2b(ms []int) ([]Figure2Curve, error) {
	return Figure2bWith(harness.Options{}, ms)
}

// Figure2bWith is Figure2b with explicit harness options; one replication
// per machine count.
func Figure2bWith(opt harness.Options, ms []int) ([]Figure2Curve, error) {
	return harness.Map(opt, 0, len(ms), func(rep *harness.Rep) (Figure2Curve, error) {
		return figure2Curve(ms[rep.Index], 4)
	})
}

// Series converts curves to plot series for rendering.
func Figure2Series(curves []Figure2Curve) []plot.Series {
	out := make([]plot.Series, 0, len(curves))
	for _, c := range curves {
		out = append(out, plot.NewSeries(
			fmt.Sprintf("m=%d pmax=%d (%d states)", c.M, c.PMax, c.States), c.X, c.P))
	}
	return out
}
