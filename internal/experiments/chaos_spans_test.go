package experiments

import (
	"bytes"
	"testing"

	"hetlb/internal/harness"
	"hetlb/internal/obs/span"
)

// chaosSpanTrace runs the reduced chaos sweep with span collection at the
// given worker count and returns the serialized trace.
func chaosSpanTrace(t *testing.T, parallelism int) []byte {
	t.Helper()
	rec := span.NewRecorder(1 << 18)
	if _, err := ChaosWith(harness.Options{Parallelism: parallelism, Spans: rec}, PaperChaos().Reduced()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The span trace of a sweep must be bit-identical for every worker count:
// per-replication namespaces plus index-ordered merging remove scheduling
// from the trace entirely. This is the acceptance bar for the causal span
// layer — if it holds, explain reports are reproducible artifacts.
func TestChaosSpanTraceParallelismInvariant(t *testing.T) {
	seq := chaosSpanTrace(t, 1)
	par := chaosSpanTrace(t, 4)
	if !bytes.Equal(seq, par) {
		t.Fatalf("span trace differs between -parallel 1 (%d bytes) and 4 (%d bytes)", len(seq), len(par))
	}
	if len(seq) == 0 {
		t.Fatal("empty span trace")
	}
}

// A faulted chaos sweep must attribute at least one fault record to a
// specific session span: that parent link is what hetlb explain aggregates.
func TestChaosSpansAttributeFaultsToSessions(t *testing.T) {
	rec := span.NewRecorder(1 << 18)
	if _, err := ChaosWith(harness.Options{Spans: rec}, PaperChaos().Reduced()); err != nil {
		t.Fatal(err)
	}
	spans := rec.Spans()
	session := make(map[span.ID]bool)
	for _, s := range spans {
		if s.Kind == span.KindSession {
			session[s.ID] = true
		}
	}
	var attributed, crashed int
	for _, s := range spans {
		if s.Kind == span.KindFault && session[s.Parent] {
			attributed++
		}
		if s.Kind == span.KindSession && s.Flags&span.FlagCrashed != 0 {
			crashed++
		}
	}
	if attributed == 0 {
		t.Error("no fault record is parented to a session span")
	}
	if crashed == 0 {
		t.Error("no session span carries FlagCrashed despite scheduled crashes")
	}
}
