package lp

import (
	"fmt"

	"hetlb/internal/core"
)

// FractionalMakespanClustered computes the optimal fractional makespan for
// clusters of identical machines: jobs may be split arbitrarily between
// clusters, and within a cluster the pooled work spreads perfectly over its
// machines. It solves
//
//	min T  s.t.  Σ_c x[c][j] = 1            for every job j
//	             Σ_j p[c][j]·x[c][j] ≤ S_c·T for every cluster c
//	             x ≥ 0, T ≥ 0
//
// and returns T. This is a valid lower bound on the integral optimum for
// any number of clusters, generalizing core.TwoClusterFractionalLB.
func FractionalMakespanClustered(sizes []int, p [][]core.Cost) (float64, error) {
	k := len(sizes)
	if k == 0 || len(p) != k {
		return 0, fmt.Errorf("lp: need one cost row per cluster")
	}
	n := len(p[0])
	if n == 0 {
		return 0, nil
	}
	// Variables: x[c][j] at index c*n+j, then T at index k*n.
	nv := k*n + 1
	tIdx := k * n
	obj := make([]float64, nv)
	obj[tIdx] = 1

	cons := make([]Constraint, 0, n+k)
	for j := 0; j < n; j++ {
		coeffs := make([]float64, nv)
		for c := 0; c < k; c++ {
			coeffs[c*n+j] = 1
		}
		cons = append(cons, Constraint{Coeffs: coeffs, Rel: EQ, RHS: 1})
	}
	for c := 0; c < k; c++ {
		if len(p[c]) != n {
			return 0, fmt.Errorf("lp: cluster %d has %d costs, cluster 0 has %d", c, len(p[c]), n)
		}
		coeffs := make([]float64, nv)
		for j := 0; j < n; j++ {
			coeffs[c*n+j] = float64(p[c][j])
		}
		coeffs[tIdx] = -float64(sizes[c])
		cons = append(cons, Constraint{Coeffs: coeffs, Rel: LE, RHS: 0})
	}
	_, val, st := Solve(obj, cons)
	if st != Optimal {
		return 0, fmt.Errorf("lp: fractional makespan LP ended %v", st)
	}
	return val, nil
}

// FractionalMakespanKCluster is the KCluster convenience wrapper.
func FractionalMakespanKCluster(kc *core.KCluster) (float64, error) {
	sizes := make([]int, kc.NumClusters())
	p := make([][]core.Cost, kc.NumClusters())
	for c := range sizes {
		sizes[c] = kc.ClusterSize(c)
		row := make([]core.Cost, kc.NumJobs())
		for j := range row {
			row[j] = kc.ClusterCost(c, j)
		}
		p[c] = row
	}
	return FractionalMakespanClustered(sizes, p)
}

// FractionalMakespanDense computes the Lawler–Labetoulle style fractional
// bound at machine granularity for an arbitrary cost model:
//
//	min T  s.t.  Σ_i x[i][j] = 1             for every job j
//	             Σ_j p[i][j]·x[i][j] ≤ T      for every machine i
//
// (each machine is its own "cluster" of size 1). Dense in m·n variables —
// use for small and medium instances.
func FractionalMakespanDense(m core.CostModel) (float64, error) {
	sizes := make([]int, m.NumMachines())
	p := make([][]core.Cost, m.NumMachines())
	for i := range sizes {
		sizes[i] = 1
		row := make([]core.Cost, m.NumJobs())
		for j := range row {
			row[j] = m.Cost(i, j)
		}
		p[i] = row
	}
	return FractionalMakespanClustered(sizes, p)
}
