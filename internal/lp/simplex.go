// Package lp is a small, dependency-free linear programming solver (dense
// two-phase primal simplex with Bland's anti-cycling rule) plus the
// fractional-makespan formulations built on it.
//
// The paper's related work solves R||Cmax relaxations by linear programming
// (Lawler & Labetoulle's preemptive optimum; Lenstra, Shmoys & Tardos'
// 2-approximation rounds an LP solution). This package reproduces the
// fractional bound as a principled reference for the experiments — in
// particular it provides the only practical lower bound for the k-cluster
// extension, where the two-cluster prefix argument no longer applies.
//
// The solver targets the moderate, dense problems these formulations
// produce (thousands of variables, hundreds of constraints); it is not a
// general-purpose LP code.
package lp

import (
	"fmt"
	"math"
)

// Relation is a constraint sense.
type Relation int

// Constraint senses.
const (
	LE Relation = iota // Σ aᵢxᵢ ≤ b
	GE                 // Σ aᵢxᵢ ≥ b
	EQ                 // Σ aᵢxᵢ = b
)

// Constraint is one row of the problem.
type Constraint struct {
	// Coeffs has one coefficient per structural variable (missing ones
	// are treated as 0).
	Coeffs []float64
	Rel    Relation
	RHS    float64
}

// Status reports the outcome of Solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	}
	return fmt.Sprintf("status(%d)", int(s))
}

const eps = 1e-9

// Solve minimizes obj·x subject to the constraints and x ≥ 0. It returns
// the optimal structural variables and objective value when Status ==
// Optimal.
func Solve(obj []float64, cons []Constraint) ([]float64, float64, Status) {
	n := len(obj)
	m := len(cons)

	// Normalize: RHS ≥ 0 (flip rows), count slack/surplus/artificials.
	rows := make([]Constraint, m)
	for r, c := range cons {
		cc := Constraint{Coeffs: append([]float64(nil), c.Coeffs...), Rel: c.Rel, RHS: c.RHS}
		for len(cc.Coeffs) < n {
			cc.Coeffs = append(cc.Coeffs, 0)
		}
		if cc.RHS < 0 {
			for i := range cc.Coeffs {
				cc.Coeffs[i] = -cc.Coeffs[i]
			}
			cc.RHS = -cc.RHS
			switch cc.Rel {
			case LE:
				cc.Rel = GE
			case GE:
				cc.Rel = LE
			}
		}
		rows[r] = cc
	}

	// Column layout: [structural | slack/surplus | artificial].
	numSlack := 0
	for _, c := range rows {
		if c.Rel != EQ {
			numSlack++
		}
	}
	numArt := 0
	for _, c := range rows {
		if c.Rel != LE {
			numArt++
		}
	}
	total := n + numSlack + numArt
	artStart := n + numSlack

	// Build the tableau: m rows × (total+1) columns (last = RHS).
	t := make([][]float64, m)
	basis := make([]int, m)
	slackIdx, artIdx := n, artStart
	for r, c := range rows {
		t[r] = make([]float64, total+1)
		copy(t[r], c.Coeffs)
		t[r][total] = c.RHS
		switch c.Rel {
		case LE:
			t[r][slackIdx] = 1
			basis[r] = slackIdx
			slackIdx++
		case GE:
			t[r][slackIdx] = -1
			slackIdx++
			t[r][artIdx] = 1
			basis[r] = artIdx
			artIdx++
		case EQ:
			t[r][artIdx] = 1
			basis[r] = artIdx
			artIdx++
		}
	}

	maxIter := 50 * (m + total)

	// Phase 1: minimize the sum of artificials.
	if numArt > 0 {
		cost := make([]float64, total)
		for i := artStart; i < total; i++ {
			cost[i] = 1
		}
		st := runSimplex(t, basis, cost, maxIter)
		if st != Optimal {
			return nil, 0, st
		}
		// Feasible iff the phase-1 objective is 0.
		var art float64
		for r, b := range basis {
			if b >= artStart {
				art += t[r][total]
			}
		}
		if art > 1e-7 {
			return nil, 0, Infeasible
		}
		// Drive remaining artificials out of the basis where possible.
		for r, b := range basis {
			if b < artStart {
				continue
			}
			pivoted := false
			for c := 0; c < artStart; c++ {
				if math.Abs(t[r][c]) > eps {
					pivot(t, basis, r, c)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row; harmless (stays with a zero artificial).
				_ = pivoted
			}
		}
	}

	// Phase 2: minimize the real objective (artificials excluded by cost 0
	// and by never letting them enter).
	cost := make([]float64, total)
	copy(cost, obj)
	st := runPhase2(t, basis, cost, artStart, maxIter)
	if st != Optimal {
		return nil, 0, st
	}
	x := make([]float64, n)
	for r, b := range basis {
		if b < n {
			x[b] = t[r][total]
		}
	}
	var val float64
	for i := range obj {
		val += obj[i] * x[i]
	}
	return x, val, Optimal
}

// reducedCosts computes cost_j − c_B·B⁻¹A_j for every column under the
// current tableau representation.
func reducedCosts(t [][]float64, basis []int, cost []float64) []float64 {
	total := len(cost)
	red := append([]float64(nil), cost...)
	for r, b := range basis {
		cb := cost[b]
		if cb == 0 {
			continue
		}
		for c := 0; c < total; c++ {
			red[c] -= cb * t[r][c]
		}
	}
	return red
}

func runSimplex(t [][]float64, basis []int, cost []float64, maxIter int) Status {
	return iterate(t, basis, cost, len(cost), maxIter)
}

func runPhase2(t [][]float64, basis []int, cost []float64, artStart, maxIter int) Status {
	return iterate(t, basis, cost, artStart, maxIter)
}

// iterate runs primal simplex allowing only columns < allowCols to enter
// (this is how artificials are frozen in phase 2). Bland's rule: the
// lowest-index improving column enters; the lowest-index eligible row
// leaves.
func iterate(t [][]float64, basis []int, cost []float64, allowCols, maxIter int) Status {
	m := len(t)
	if m == 0 {
		return Optimal
	}
	total := len(t[0]) - 1
	for iter := 0; iter < maxIter; iter++ {
		red := reducedCosts(t, basis, cost)
		enter := -1
		for c := 0; c < allowCols && c < total; c++ {
			if red[c] < -eps {
				enter = c
				break
			}
		}
		if enter == -1 {
			return Optimal
		}
		// Ratio test with Bland tie break.
		leave := -1
		best := math.Inf(1)
		for r := 0; r < m; r++ {
			a := t[r][enter]
			if a > eps {
				ratio := t[r][total] / a
				if ratio < best-eps || (ratio < best+eps && (leave == -1 || basis[r] < basis[leave])) {
					best = ratio
					leave = r
				}
			}
		}
		if leave == -1 {
			return Unbounded
		}
		pivot(t, basis, leave, enter)
	}
	return IterLimit
}

// pivot makes column enter basic in row leave.
func pivot(t [][]float64, basis []int, leave, enter int) {
	row := t[leave]
	p := row[enter]
	for c := range row {
		row[c] /= p
	}
	for r := range t {
		if r == leave {
			continue
		}
		f := t[r][enter]
		if f == 0 {
			continue
		}
		for c := range t[r] {
			t[r][c] -= f * row[c]
		}
	}
	basis[leave] = enter
}
