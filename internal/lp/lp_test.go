package lp

import (
	"math"
	"testing"

	"hetlb/internal/core"
	"hetlb/internal/exact"
	"hetlb/internal/rng"
	"hetlb/internal/workload"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSolveTextbook(t *testing.T) {
	// max 3x+5y s.t. x≤4, 2y≤12, 3x+2y≤18 → min -3x-5y; optimum (2,6), 36.
	x, val, st := Solve([]float64{-3, -5}, []Constraint{
		{Coeffs: []float64{1, 0}, Rel: LE, RHS: 4},
		{Coeffs: []float64{0, 2}, Rel: LE, RHS: 12},
		{Coeffs: []float64{3, 2}, Rel: LE, RHS: 18},
	})
	if st != Optimal {
		t.Fatalf("status %v", st)
	}
	if !almost(val, -36, 1e-6) || !almost(x[0], 2, 1e-6) || !almost(x[1], 6, 1e-6) {
		t.Fatalf("x=%v val=%v", x, val)
	}
}

func TestSolveWithEquality(t *testing.T) {
	// min x+2y s.t. x+y = 10, x ≤ 4 → x=4, y=6, val 16.
	x, val, st := Solve([]float64{1, 2}, []Constraint{
		{Coeffs: []float64{1, 1}, Rel: EQ, RHS: 10},
		{Coeffs: []float64{1, 0}, Rel: LE, RHS: 4},
	})
	if st != Optimal {
		t.Fatalf("status %v", st)
	}
	if !almost(val, 16, 1e-6) || !almost(x[0], 4, 1e-6) {
		t.Fatalf("x=%v val=%v", x, val)
	}
}

func TestSolveWithGE(t *testing.T) {
	// min 2x+3y s.t. x+y ≥ 4, x ≥ 1 → x=4? cost 2·4=8 at (4,0); or x=1,y=3
	// cost 2+9=11. Optimum (4,0) → 8.
	x, val, st := Solve([]float64{2, 3}, []Constraint{
		{Coeffs: []float64{1, 1}, Rel: GE, RHS: 4},
		{Coeffs: []float64{1, 0}, Rel: GE, RHS: 1},
	})
	if st != Optimal {
		t.Fatalf("status %v", st)
	}
	if !almost(val, 8, 1e-6) || !almost(x[0], 4, 1e-6) {
		t.Fatalf("x=%v val=%v", x, val)
	}
}

func TestSolveInfeasible(t *testing.T) {
	_, _, st := Solve([]float64{1}, []Constraint{
		{Coeffs: []float64{1}, Rel: LE, RHS: 1},
		{Coeffs: []float64{1}, Rel: GE, RHS: 2},
	})
	if st != Infeasible {
		t.Fatalf("status %v, want infeasible", st)
	}
}

func TestSolveUnbounded(t *testing.T) {
	_, _, st := Solve([]float64{-1}, []Constraint{
		{Coeffs: []float64{-1}, Rel: LE, RHS: 0},
	})
	if st != Unbounded {
		t.Fatalf("status %v, want unbounded", st)
	}
}

func TestSolveNegativeRHSNormalization(t *testing.T) {
	// x - y ≤ -2 with min x+y → y ≥ x+2, optimum (0,2), val 2.
	x, val, st := Solve([]float64{1, 1}, []Constraint{
		{Coeffs: []float64{1, -1}, Rel: LE, RHS: -2},
	})
	if st != Optimal {
		t.Fatalf("status %v", st)
	}
	if !almost(val, 2, 1e-6) || !almost(x[1], 2, 1e-6) {
		t.Fatalf("x=%v val=%v", x, val)
	}
}

func TestFractionalMatchesTwoClusterClosedForm(t *testing.T) {
	// The LP bound must agree with the prefix-scan closed form for two
	// clusters (strong cross-validation of both implementations).
	gen := rng.New(1)
	for iter := 0; iter < 40; iter++ {
		m1 := 1 + gen.Intn(4)
		m2 := 1 + gen.Intn(4)
		n := 1 + gen.Intn(10)
		tc := workload.UniformTwoCluster(gen, m1, m2, n, 1, 50)
		closed := core.TwoClusterFractionalLB(tc)
		sizes := []int{m1, m2}
		p0 := make([]core.Cost, n)
		p1 := make([]core.Cost, n)
		for j := 0; j < n; j++ {
			p0[j] = tc.ClusterCost(0, j)
			p1[j] = tc.ClusterCost(1, j)
		}
		lpv, err := FractionalMakespanClustered(sizes, [][]core.Cost{p0, p1})
		if err != nil {
			t.Fatal(err)
		}
		if !almost(lpv, closed, 1e-6*(1+closed)) {
			t.Fatalf("iter %d: LP %v != closed form %v (m1=%d m2=%d n=%d)",
				iter, lpv, closed, m1, m2, n)
		}
	}
}

func TestFractionalIsLowerBoundOnOPT(t *testing.T) {
	gen := rng.New(2)
	for iter := 0; iter < 25; iter++ {
		k := 2 + gen.Intn(2)
		sizes := make([]int, k)
		p := make([][]core.Cost, k)
		n := 3 + gen.Intn(6)
		for c := 0; c < k; c++ {
			sizes[c] = 1 + gen.Intn(2)
			p[c] = make([]core.Cost, n)
			for j := range p[c] {
				p[c][j] = gen.IntRange(1, 20)
			}
		}
		kc, err := core.NewKCluster(sizes, p)
		if err != nil {
			t.Fatal(err)
		}
		lb, err := FractionalMakespanKCluster(kc)
		if err != nil {
			t.Fatal(err)
		}
		res := exact.Solve(kc)
		if !res.Proven {
			continue
		}
		if lb > float64(res.Opt)+1e-6 {
			t.Fatalf("LP bound %v exceeds OPT %d", lb, res.Opt)
		}
	}
}

func TestFractionalDenseIdentical(t *testing.T) {
	// Identical machines: fractional optimum is exactly ΣP/m.
	id, _ := core.NewIdentical(4, []core.Cost{7, 9, 4})
	lb, err := FractionalMakespanDense(id)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(lb, 5, 1e-6) {
		t.Fatalf("dense fractional = %v, want 5", lb)
	}
}

func TestFractionalEmptyJobs(t *testing.T) {
	lb, err := FractionalMakespanClustered([]int{2}, [][]core.Cost{{}})
	if err != nil || lb != 0 {
		t.Fatalf("empty: %v, %v", lb, err)
	}
}

func TestFractionalBadShape(t *testing.T) {
	if _, err := FractionalMakespanClustered(nil, nil); err == nil {
		t.Fatal("empty clusters accepted")
	}
	if _, err := FractionalMakespanClustered([]int{1, 1}, [][]core.Cost{{1}, {1, 2}}); err == nil {
		t.Fatal("ragged costs accepted")
	}
}

func TestFractionalBiasedJobsSplitPerfectly(t *testing.T) {
	// Two jobs perfectly biased: fractional = integral = 1 each.
	lb, err := FractionalMakespanClustered([]int{1, 1}, [][]core.Cost{
		{1, 100},
		{100, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(lb, 1, 1e-6) {
		t.Fatalf("lb = %v, want 1", lb)
	}
}

func BenchmarkFractionalKCluster4x192(b *testing.B) {
	gen := rng.New(3)
	sizes := []int{8, 8, 4, 4}
	p := make([][]core.Cost, 4)
	for c := range p {
		p[c] = make([]core.Cost, 192)
		for j := range p[c] {
			p[c][j] = gen.IntRange(1, 1000)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FractionalMakespanClustered(sizes, p); err != nil {
			b.Fatal(err)
		}
	}
}
