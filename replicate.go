package hetlb

import (
	"context"
	"time"

	"hetlb/internal/harness"
	"hetlb/internal/rng"
)

// This file exposes the replication harness: the deterministic parallel
// runner every experiment driver in this repository is built on. Use it for
// your own Monte-Carlo studies over the library — sweeps, confidence
// intervals, ratio distributions — whenever you need many independent runs
// whose aggregate must not depend on how they were scheduled.

// ReplicationOptions configures Replicate. The zero value runs on
// GOMAXPROCS workers with no deadline and no instrumentation.
type ReplicationOptions struct {
	// Parallelism bounds the number of concurrently executing
	// replications; 0 means GOMAXPROCS. The results are identical for
	// every value — parallelism is a throughput knob, never a semantic
	// one.
	Parallelism int
	// Context cancels the run early; nil means Background.
	Context context.Context
	// Timeout, when positive, bounds the whole run's wall time.
	Timeout time.Duration
	// Metrics, when non-nil, receives the harness_* instruments
	// (replications started/completed/failed, wall-time histogram).
	Metrics *MetricsRegistry
	// Trace, when non-nil, receives one replication-start/end event pair
	// per replication.
	Trace *EventTrace
	// OnProgress, when non-nil, is called after each finished replication
	// with (completed, total). Calls are serialized but arrive in
	// completion order.
	OnProgress func(completed, total int)
	// Spans, when non-nil, collects the causal span trace of the whole
	// run: one KindReplication span per replication, with each
	// replication's runtime spans recorded into a private namespaced
	// sub-recorder (exposed as Replication.Spans) and merged in index
	// order after the pool drains — the merged trace is bit-identical for
	// every Parallelism, like the results.
	Spans *SpanTrace
	// SpanCap bounds each replication's private span ring; 0 defaults to
	// 16384.
	SpanCap int
}

// Replication is one replication's execution context: its index, its
// private deterministic RNG (the substream keyed by the experiment seed and
// the index), and the run's context for cooperative cancellation.
type Replication = harness.Rep

// Replicate executes n independent replications of fn on a bounded worker
// pool and returns their results in index order. Replication i draws all
// its randomness from a substream that is a pure function of (seed, i), so
// the returned slice is bit-identical for every Parallelism setting — run
// sequentially while debugging, saturate the machine in production, publish
// the same numbers either way.
//
// On failure Replicate cancels the remaining replications and returns the
// lowest-indexed error it observed; completed results are returned
// alongside it.
func Replicate[T any](opt ReplicationOptions, seed uint64, n int, fn func(rep *Replication) (T, error)) ([]T, error) {
	return harness.Map(harness.Options{
		Parallelism: opt.Parallelism,
		Context:     opt.Context,
		Timeout:     opt.Timeout,
		Metrics:     opt.Metrics,
		Trace:       opt.Trace,
		OnProgress:  opt.OnProgress,
		Spans:       opt.Spans,
		SpanCap:     opt.SpanCap,
	}, seed, n, fn)
}

// DeriveSeed deterministically mixes a base seed with a key path (for
// example an experiment id and a replication index) into a new seed. It is
// a pure function — unlike stateful seed-drawing, the result does not
// depend on derivation order, which is what makes parallel replication
// reproducible. Replicate uses it internally; it is exported for callers
// that manage their own generators.
func DeriveSeed(seed uint64, keys ...uint64) uint64 { return rng.DeriveSeed(seed, keys...) }
