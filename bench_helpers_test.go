package hetlb_test

import (
	"testing"

	"hetlb"
	"hetlb/internal/gossip"
	"hetlb/internal/protocol"
)

// runSelectionAblation drives DLB2C with either the uniform-initiator or the
// sweep selection policy for a fixed exchange budget and returns the final
// makespan.
func runSelectionAblation(tc *hetlb.TwoCluster, seed uint64, sweep bool) hetlb.Cost {
	initial := hetlb.RandomInitial(tc, seed)
	cfg := gossip.Config{Seed: seed}
	if sweep {
		cfg.Selection = &gossip.Sweep{}
	}
	e := gossip.New(protocol.DLB2C{Model: tc}, initial, cfg)
	res := e.Run(tc.NumMachines()*10, false)
	return res.FinalMakespan
}

// benchMoves runs DLB2C vs its min-move variant over a fixed budget and
// reports migrations and quality.
func benchMoves(b *testing.B, minMove bool) {
	p0 := make([]hetlb.Cost, 192)
	p1 := make([]hetlb.Cost, 192)
	for j := range p0 {
		p0[j] = hetlb.Cost(1 + (j*2711)%1000)
		p1[j] = hetlb.Cost(1 + (j*5381)%1000)
	}
	tc, err := hetlb.NewTwoCluster(16, 8, p0, p1)
	if err != nil {
		b.Fatal(err)
	}
	var proto protocol.Protocol = protocol.DLB2C{Model: tc}
	if minMove {
		proto = protocol.DLB2CMinMove{Model: tc}
	}
	var moves int
	var final hetlb.Cost
	for i := 0; i < b.N; i++ {
		initial := hetlb.RandomInitial(tc, uint64(i))
		e := gossip.New(proto, initial, gossip.Config{Seed: uint64(i)})
		res := e.Run(24*10, false)
		moves = e.Moves()
		final = res.FinalMakespan
	}
	b.ReportMetric(float64(moves), "migrations")
	b.ReportMetric(float64(final)/hetlb.TwoClusterLowerBound(tc), "cmax/lb")
}

// benchNetLatency runs the message-passing runtime at a given latency.
func benchNetLatency(b *testing.B, latency int64) {
	p0 := make([]hetlb.Cost, 192)
	p1 := make([]hetlb.Cost, 192)
	for j := range p0 {
		p0[j] = hetlb.Cost(1 + (j*4409)%1000)
		p1[j] = hetlb.Cost(1 + (j*7561)%1000)
	}
	tc, err := hetlb.NewTwoCluster(16, 8, p0, p1)
	if err != nil {
		b.Fatal(err)
	}
	lb := hetlb.TwoClusterLowerBound(tc)
	var final hetlb.Cost
	var sessions int
	for i := 0; i < b.N; i++ {
		initial := hetlb.RandomInitial(tc, uint64(i))
		res, err := hetlb.DLB2CMessagePassing(tc, initial, hetlb.MessagePassingOptions{
			Seed: uint64(i), Latency: latency, Period: 10, Horizon: 2000,
		})
		if err != nil {
			b.Fatal(err)
		}
		final = res.Makespan
		sessions = res.Sessions
	}
	b.ReportMetric(float64(final)/lb, "cmax/lb")
	b.ReportMetric(float64(sessions), "sessions")
}
