// Command findcycle searches for small two-cluster instances on which DLB2C
// provably never converges (Proposition 8 of the paper): it samples random
// instances and initial assignments, exhaustively enumerates the schedules
// reachable under every pairwise balancing sequence, and reports instances
// whose reachable set contains no stable schedule.
//
// The instance hardcoded in workload.CycleInstance was produced by this
// tool. Usage:
//
//	findcycle [-seed N] [-tries N] [-m1 N] [-m2 N] [-jobs N] [-maxcost N]
package main

import (
	"flag"
	"fmt"
	"os"

	"hetlb/internal/core"
	"hetlb/internal/protocol"
	"hetlb/internal/rng"
)

func main() {
	seed := flag.Uint64("seed", 1, "random seed")
	tries := flag.Int("tries", 200000, "number of random instances to sample")
	m1 := flag.Int("m1", 2, "machines in cluster 0")
	m2 := flag.Int("m2", 1, "machines in cluster 1")
	jobs := flag.Int("jobs", 5, "number of jobs")
	maxCost := flag.Int64("maxcost", 5, "maximum per-cluster job cost")
	maxStates := flag.Int("maxstates", 4000, "reachable-state cap per candidate")
	count := flag.Int("count", 1, "number of instances to report before exiting")
	flag.Parse()

	gen := rng.New(*seed)
	found := 0
	for t := 0; t < *tries && found < *count; t++ {
		p0 := make([]core.Cost, *jobs)
		p1 := make([]core.Cost, *jobs)
		for j := range p0 {
			p0[j] = gen.IntRange(1, *maxCost)
			p1[j] = gen.IntRange(1, *maxCost)
		}
		tc, err := core.NewTwoCluster(*m1, *m2, p0, p1)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		machineOf := make([]int, *jobs)
		for j := range machineOf {
			machineOf[j] = gen.Intn(*m1 + *m2)
		}
		start, err := core.FromMachineOf(tc, machineOf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		r := protocol.Explore(protocol.DLB2C{Model: tc}, start, *maxStates)
		if !r.ProvesNonConvergence() {
			continue
		}
		found++
		fmt.Printf("FOUND after %d tries: m1=%d m2=%d jobs=%d\n", t+1, *m1, *m2, *jobs)
		fmt.Printf("  p0 = %v\n", p0)
		fmt.Printf("  p1 = %v\n", p1)
		fmt.Printf("  initial machineOf = %v\n", machineOf)
		fmt.Printf("  reachable states = %d, stable = %d\n", r.States, r.StableStates)
		cyc := protocol.FindCycle(protocol.DLB2C{Model: tc}, start, *maxStates)
		fmt.Printf("  explicit cycle of length %d\n", len(cyc)-1)
		for k, s := range cyc {
			fmt.Printf("    state %d: %s\n", k, s)
		}
	}
	if found == 0 {
		fmt.Println("no non-converging instance found; widen the search")
		os.Exit(2)
	}
}
