package main

import (
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"hetlb/internal/analysis"
)

// SARIF 2.1.0 output (-sarif <path>): the static analysis interchange
// format CI artifact viewers and code-scanning UIs ingest. Only the
// subset hetlbvet produces is modelled; one run, one result per
// diagnostic, URIs relative to the module root under %SRCROOT%.

type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// located pairs a diagnostic with its resolved position (the fileset is
// per-loader, so positions are resolved at collection time).
type located struct {
	diag analysis.Diagnostic
	pos  token.Position
}

// writeSARIF renders the collected diagnostics and writes them to path.
// moduleDir relativizes file URIs; results outside it keep absolute paths.
func writeSARIF(path, moduleDir string, analyzers []*analysis.Analyzer, diags []located) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		uri := d.pos.Filename
		if moduleDir != "" {
			if rel, err := filepath.Rel(moduleDir, uri); err == nil && !strings.HasPrefix(rel, "..") {
				uri = filepath.ToSlash(rel)
			}
		}
		results = append(results, sarifResult{
			RuleID:  d.diag.Analyzer,
			Level:   "warning",
			Message: sarifMessage{Text: d.diag.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: uri, URIBaseID: "%SRCROOT%"},
					Region:           sarifRegion{StartLine: d.pos.Line, StartColumn: d.pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Version: "2.1.0",
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "hetlbvet", Rules: rules}},
			Results: results,
		}},
	}
	data, err := json.MarshalIndent(&log, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
