package main_test

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildVet compiles the real hetlbvet binary once per test run: the
// integration contract under test is the installed tool's behaviour — exit
// codes, stderr shape, SARIF files — not the in-process analyzer API.
func buildVet(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "hetlbvet")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building hetlbvet: %v\n%s", err, out)
	}
	return bin
}

// writeModule lays out a temp module from file name → contents.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// runVet executes the binary in dir and returns exit code and stderr.
func runVet(t *testing.T, bin, dir string, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	err := cmd.Run()
	if err == nil {
		return 0, stderr.String()
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode(), stderr.String()
	}
	t.Fatalf("running hetlbvet: %v\n%s", err, stderr.String())
	return -1, ""
}

const goMod = "module fixture\n\ngo 1.22\n"

func TestIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the real binary")
	}
	bin := buildVet(t)

	t.Run("clean module exits 0", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"go.mod": goMod,
			"core/core.go": `package core

// Sum is deterministic: slice order, no clocks, no map ranges.
func Sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}
`,
		})
		code, stderr := runVet(t, bin, dir, "./...")
		if code != 0 {
			t.Fatalf("exit %d, want 0; stderr:\n%s", code, stderr)
		}
	})

	t.Run("findings exit 1", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"go.mod": goMod,
			"core/core.go": `package core

// Keys iterates a map in a determinism-scoped package: a finding.
func Keys(m map[string]int) int {
	t := 0
	for _, v := range m {
		t += v
	}
	return t
}
`,
		})
		code, stderr := runVet(t, bin, dir, "./...")
		if code != 1 {
			t.Fatalf("exit %d, want 1; stderr:\n%s", code, stderr)
		}
		if !strings.Contains(stderr, "determinism") {
			t.Errorf("stderr does not name the analyzer:\n%s", stderr)
		}
	})

	t.Run("load error exits 2", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"go.mod":       goMod,
			"core/core.go": "package core\n\nfunc Broken( {\n",
		})
		code, stderr := runVet(t, bin, dir, "./...")
		if code != 2 {
			t.Fatalf("exit %d, want 2; stderr:\n%s", code, stderr)
		}
	})

	t.Run("lockshape catches the two-shard-lock session", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"go.mod": goMod,
			"shardgossip/engine.go": `package shardgossip

import "sync"

type shardState struct {
	mu sync.Mutex
	//hetlb:guarded
	partialSum int64
}

type engine struct {
	shards []shardState
	start  []chan struct{}
}

func (e *engine) run() {
	for s := range e.shards {
		go e.worker(s)
	}
}

func (e *engine) worker(s int) {
	for range e.start[s] {
		e.session(s, s+1)
	}
}

func (e *engine) session(i, j int) {
	e.shards[i].mu.Lock()
	e.shards[j].mu.Lock()
	e.shards[i].partialSum++
	e.shards[j].partialSum--
	e.shards[j].mu.Unlock()
	e.shards[i].mu.Unlock()
}
`,
		})
		code, stderr := runVet(t, bin, dir, "./...")
		if code != 1 {
			t.Fatalf("exit %d, want 1; stderr:\n%s", code, stderr)
		}
		if !strings.Contains(stderr, "second shard mutex acquired") {
			t.Errorf("stderr does not carry the lockshape finding:\n%s", stderr)
		}
		if !strings.Contains(stderr, "lockshape") {
			t.Errorf("stderr does not name lockshape:\n%s", stderr)
		}
	})

	t.Run("sarif written with module-relative URIs", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"go.mod": goMod,
			"core/core.go": `package core

func Keys(m map[string]int) int {
	t := 0
	for _, v := range m {
		t += v
	}
	return t
}
`,
		})
		sarifPath := filepath.Join(dir, "lint.sarif")
		code, stderr := runVet(t, bin, dir, "-sarif="+sarifPath, "./...")
		if code != 1 {
			t.Fatalf("exit %d, want 1; stderr:\n%s", code, stderr)
		}
		data, err := os.ReadFile(sarifPath)
		if err != nil {
			t.Fatalf("SARIF file not written on findings: %v", err)
		}
		var log struct {
			Version string `json:"version"`
			Runs    []struct {
				Tool struct {
					Driver struct {
						Name  string `json:"name"`
						Rules []struct {
							ID string `json:"id"`
						} `json:"rules"`
					} `json:"driver"`
				} `json:"tool"`
				Results []struct {
					RuleID    string `json:"ruleId"`
					Locations []struct {
						PhysicalLocation struct {
							ArtifactLocation struct {
								URI string `json:"uri"`
							} `json:"artifactLocation"`
							Region struct {
								StartLine int `json:"startLine"`
							} `json:"region"`
						} `json:"physicalLocation"`
					} `json:"locations"`
				} `json:"results"`
			} `json:"runs"`
		}
		if err := json.Unmarshal(data, &log); err != nil {
			t.Fatalf("SARIF is not valid JSON: %v", err)
		}
		if log.Version != "2.1.0" {
			t.Errorf("SARIF version = %q, want 2.1.0", log.Version)
		}
		if len(log.Runs) != 1 || log.Runs[0].Tool.Driver.Name != "hetlbvet" {
			t.Fatalf("SARIF driver malformed: %s", data)
		}
		if len(log.Runs[0].Tool.Driver.Rules) == 0 {
			t.Error("SARIF carries no rules")
		}
		if len(log.Runs[0].Results) == 0 {
			t.Fatal("SARIF carries no results for a finding run")
		}
		r := log.Runs[0].Results[0]
		if r.RuleID != "determinism" {
			t.Errorf("result ruleId = %q, want determinism", r.RuleID)
		}
		uri := r.Locations[0].PhysicalLocation.ArtifactLocation.URI
		if uri != "core/core.go" {
			t.Errorf("result URI = %q, want module-relative core/core.go", uri)
		}
		if r.Locations[0].PhysicalLocation.Region.StartLine == 0 {
			t.Error("result has no start line")
		}
	})

	t.Run("sarif written on a clean run too", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"go.mod":       goMod,
			"core/core.go": "package core\n\nfunc Ok() {}\n",
		})
		sarifPath := filepath.Join(dir, "lint.sarif")
		code, stderr := runVet(t, bin, dir, "-sarif="+sarifPath, "./...")
		if code != 0 {
			t.Fatalf("exit %d, want 0; stderr:\n%s", code, stderr)
		}
		if _, err := os.Stat(sarifPath); err != nil {
			t.Fatalf("SARIF file not written on clean run: %v", err)
		}
	})

	t.Run("flow=false drops the interprocedural analyzers", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"go.mod": goMod,
			"shardgossip/engine.go": `package shardgossip

import "sync"

type shardState struct {
	mu sync.Mutex
}

type engine struct {
	shards []shardState
	start  []chan struct{}
}

func (e *engine) run() {
	for s := range e.shards {
		go e.worker(s)
	}
}

func (e *engine) worker(s int) {
	for range e.start[s] {
		e.shards[s].mu.Lock()
		e.shards[s+1].mu.Lock()
		e.shards[s+1].mu.Unlock()
		e.shards[s].mu.Unlock()
	}
}
`,
		})
		code, stderr := runVet(t, bin, dir, "./...")
		if code != 1 {
			t.Fatalf("with flow: exit %d, want 1; stderr:\n%s", code, stderr)
		}
		code, stderr = runVet(t, bin, dir, "-flow=false", "./...")
		if code != 0 {
			t.Fatalf("with -flow=false: exit %d, want 0; stderr:\n%s", code, stderr)
		}
	})
}
