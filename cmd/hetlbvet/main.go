// Command hetlbvet is the repository's multichecker: it runs the
// project-specific static analyzers over the module and exits non-zero on
// any finding, vet-style. The suite has two layers: the syntactic checks
// (determinism, rngdiscipline, noalloc, statssafety) and the
// interprocedural flow analyzers (seedflow, lockshape, phasefreeze), which
// build a per-package call graph and carry call-path traces in their
// diagnostics. `-flow=false` drops the second layer.
//
// Usage:
//
//	go run ./cmd/hetlbvet ./...
//	go run ./cmd/hetlbvet -analyzers=determinism,noalloc ./internal/gossip
//	go run ./cmd/hetlbvet -sarif=lint.sarif -stats ./...
//
// Exit codes: 0 clean, 1 findings, 2 load or usage error. -sarif writes a
// SARIF 2.1.0 report (also on findings) for CI artifact upload; -stats
// prints per-analyzer finding and suppression counts.
//
// The invariants these analyzers enforce (bit-determinism across worker
// counts, keyed RNG substreams, allocation-free step paths, the sharded
// engine's lock and phase-freeze contracts) are documented in DESIGN.md §11,
// §14 and §16; `make lint` and the CI lint job run this binary over the
// whole tree.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hetlb/internal/analysis"
	"hetlb/internal/analysis/load"
	"hetlb/internal/analysis/suite"
)

func main() {
	os.Exit(run())
}

func run() int {
	names := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	list := flag.Bool("list", false, "list the available analyzers and exit")
	flow := flag.Bool("flow", true, "run the interprocedural flow analyzers (seedflow, lockshape, phasefreeze)")
	sarifPath := flag.String("sarif", "", "write a SARIF 2.1.0 report to this path")
	stats := flag.Bool("stats", false, "print per-analyzer finding and suppression counts")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: hetlbvet [flags] packages...\n\n")
		fmt.Fprintf(os.Stderr, "Project-specific static analysis for hetlb; packages may be ./... or directories.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := suite.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	switch {
	case *names != "":
		sub, ok := suite.ByName(strings.Split(*names, ","))
		if !ok {
			fmt.Fprintf(os.Stderr, "hetlbvet: unknown analyzer in -analyzers=%s\n", *names)
			return 2
		}
		analyzers = sub
	case !*flow:
		analyzers = suite.Syntactic()
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := load.NewLoader(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "hetlbvet: %v\n", err)
		return 2
	}
	paths, err := loader.ExpandPatterns(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hetlbvet: %v\n", err)
		return 2
	}

	var all []located
	var totals analysis.Stats
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hetlbvet: %v\n", err)
			return 2
		}
		diags, st, err := analysis.Run(pkg, analyzers, true)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hetlbvet: %s: %v\n", path, err)
			return 2
		}
		totals.Merge(st)
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			fmt.Fprintf(os.Stderr, "%s: %s: %s\n", pos, d.Analyzer, d.Message)
			all = append(all, located{diag: d, pos: pos})
		}
	}

	if *sarifPath != "" {
		if err := writeSARIF(*sarifPath, loader.ModuleDir, analyzers, all); err != nil {
			fmt.Fprintf(os.Stderr, "hetlbvet: writing SARIF: %v\n", err)
			return 2
		}
	}
	if *stats {
		printStats(analyzers, totals)
	}
	if len(all) > 0 {
		fmt.Fprintf(os.Stderr, "hetlbvet: %d finding(s)\n", len(all))
		return 1
	}
	return 0
}

// printStats prints one line per analyzer in suite order, then totals, so
// `make lint-stats` shows where findings and suppressions concentrate.
func printStats(analyzers []*analysis.Analyzer, totals analysis.Stats) {
	var findings, suppressed int
	for _, a := range analyzers {
		f := totals.Findings[a.Name]
		s := totals.Suppressed[a.Name]
		fmt.Printf("%-14s %3d finding(s) %3d suppressed\n", a.Name, f, s)
		findings += f
		suppressed += s
	}
	fmt.Printf("%-14s %3d finding(s) %3d suppressed\n", "total", findings, suppressed)
}
