// Command hetlbvet is the repository's multichecker: it runs the
// project-specific static analyzers (determinism, rngdiscipline, noalloc,
// statssafety) over the module and exits non-zero on any finding, vet-style.
//
// Usage:
//
//	go run ./cmd/hetlbvet ./...
//	go run ./cmd/hetlbvet -analyzers=determinism,noalloc ./internal/gossip
//
// The invariants these analyzers enforce (bit-determinism across worker
// counts, keyed RNG substreams, allocation-free step paths, one-way
// observability) are documented in DESIGN.md §11; `make lint` and the CI
// lint job run this binary over the whole tree.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hetlb/internal/analysis"
	"hetlb/internal/analysis/load"
	"hetlb/internal/analysis/suite"
)

func main() {
	os.Exit(run())
}

func run() int {
	names := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	list := flag.Bool("list", false, "list the available analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: hetlbvet [flags] packages...\n\n")
		fmt.Fprintf(os.Stderr, "Project-specific static analysis for hetlb; packages may be ./... or directories.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := suite.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *names != "" {
		sub, ok := suite.ByName(strings.Split(*names, ","))
		if !ok {
			fmt.Fprintf(os.Stderr, "hetlbvet: unknown analyzer in -analyzers=%s\n", *names)
			return 2
		}
		analyzers = sub
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := load.NewLoader(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "hetlbvet: %v\n", err)
		return 2
	}
	paths, err := loader.ExpandPatterns(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hetlbvet: %v\n", err)
		return 2
	}

	findings := 0
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hetlbvet: %v\n", err)
			return 2
		}
		diags, err := analysis.Run(pkg, analyzers, true)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hetlbvet: %s: %v\n", path, err)
			return 2
		}
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s: %s\n", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "hetlbvet: %d finding(s)\n", findings)
		return 1
	}
	return 0
}
