// Command benchguard gates benchmark regressions against a recorded
// baseline. It reads `go test -bench` output on stdin (or -in), matches the
// sub-benchmarks of one benchmark (-bench) against the "after" column of a
// BENCH_*.json baseline, and exits non-zero when any measured ns/op exceeds
// the baseline by more than -tolerance, or when a sub-benchmark allocates
// where the baseline records zero allocations.
//
// CI runs it as the overhead-guard step of the bench-smoke job: the
// observability instrumentation must be free when disabled, so the
// tracing-disabled BenchmarkEngineStep may not regress more than 2% against
// the BENCH_3.json numbers. Absolute ns/op only transfers between machines
// of the same class — the tolerance is calibrated for the recorded runner
// (see the baseline's "cpu" field); on different hardware pass a wider
// -tolerance or re-record the baseline.
//
// The allocation gate has no tolerance: allocs/op is hardware-independent,
// and the step path is contractually allocation-free (//hetlb:noalloc).
//
// With -against, benchguard compares two recorded BENCH files instead of
// parsing bench output: every baseline entry's -column must exist in the
// -against file and stay within -tolerance of it (ns/op, with the same
// zero-tolerance allocation rule). bench-scale uses this as its
// epoch-throughput regression gate — BENCH_8.json's guard column may not
// regress against BENCH_7.json's, both recorded on the same runner class.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// baseline mirrors the BENCH_*.json layout: a results map of sub-benchmark
// name to measurement columns. The columns are kept raw because entries
// carry scalar fields (speedup, overhead ratios) next to the column objects;
// only the requested column is decoded.
type baseline struct {
	Benchmark string                                `json:"benchmark"`
	CPU       string                                `json:"cpu"`
	Results   map[string]map[string]json.RawMessage `json:"results"`
}

type column struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// measurement is one parsed `go test -bench` result line.
type measurement struct {
	nsPerOp     float64
	allocsPerOp int64
	hasAllocs   bool
}

// benchLine matches `BenchmarkName/sub-8  123  456 ns/op  0 B/op  0 allocs/op`
// (the -benchmem columns are optional).
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+[0-9.]+ B/op\s+(\d+) allocs/op)?`)

func main() {
	baselinePath := flag.String("baseline", "", "BENCH_*.json baseline to gate against (required)")
	benchName := flag.String("bench", "BenchmarkEngineStep", "benchmark whose sub-benchmarks are gated")
	colName := flag.String("column", "after", "baseline column to compare against")
	tolerance := flag.Float64("tolerance", 0.02, "allowed fractional ns/op regression (0.02 = +2%)")
	inPath := flag.String("in", "-", "bench output to check (\"-\" = stdin)")
	againstPath := flag.String("against", "", "second BENCH_*.json: gate its -column against the baseline's instead of parsing bench output (-bench/-in ignored)")
	flag.Parse()
	if *baselinePath == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -baseline is required")
		os.Exit(2)
	}

	base, err := readBaseline(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	var got map[string]measurement
	if *againstPath != "" {
		got, err = columnMeasurements(*againstPath, *colName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(2)
		}
	} else {
		var in io.Reader = os.Stdin
		if *inPath != "-" {
			f, err := os.Open(*inPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchguard:", err)
				os.Exit(2)
			}
			defer f.Close()
			in = f
		}
		got, err = parseBench(in, *benchName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(2)
		}
	}

	failures, checked := gate(base, got, *colName, *tolerance)
	for _, c := range checked {
		fmt.Println(c)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "benchguard: FAIL:", f)
		}
		os.Exit(1)
	}
	if *againstPath != "" {
		fmt.Printf("benchguard: %d entries of %s[%s] within +%.1f%% of %s[%s]\n",
			len(checked), *againstPath, *colName, *tolerance*100, *baselinePath, *colName)
		return
	}
	fmt.Printf("benchguard: %d sub-benchmarks of %s within +%.1f%% of %s[%s]\n",
		len(checked), *benchName, *tolerance*100, *baselinePath, *colName)
}

func readBaseline(path string) (*baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(b.Results) == 0 {
		return nil, fmt.Errorf("%s: no results", path)
	}
	return &b, nil
}

// columnMeasurements loads a second BENCH file and turns its named column
// into measurements, so two recorded files can be gated against each other
// exactly like live bench output. Entries without the column are skipped —
// gate reports them as "in baseline but not measured".
func columnMeasurements(path, col string) (map[string]measurement, error) {
	b, err := readBaseline(path)
	if err != nil {
		return nil, err
	}
	out := make(map[string]measurement, len(b.Results))
	for name, cols := range b.Results {
		raw, ok := cols[col]
		if !ok {
			continue
		}
		var c column
		if err := json.Unmarshal(raw, &c); err != nil {
			return nil, fmt.Errorf("%s: column %q of %s: %v", path, col, name, err)
		}
		out[name] = measurement{nsPerOp: c.NsPerOp, allocsPerOp: c.AllocsPerOp, hasAllocs: true}
	}
	return out, nil
}

// parseBench extracts the sub-benchmarks of bench (lines named
// "<bench>/<sub>-<procs>") from go test -bench output.
func parseBench(r io.Reader, bench string) (map[string]measurement, error) {
	out := make(map[string]measurement)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name, ok := strings.CutPrefix(m[1], bench+"/")
		if !ok {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		meas := measurement{nsPerOp: ns}
		if m[3] != "" {
			meas.allocsPerOp, _ = strconv.ParseInt(m[3], 10, 64)
			meas.hasAllocs = true
		}
		out[name] = meas
	}
	return out, sc.Err()
}

// gate compares the measurements against the baseline column. Every baseline
// entry must be measured (a renamed or deleted benchmark must not silently
// pass the guard); measured sub-benchmarks absent from the baseline are
// ignored.
func gate(base *baseline, got map[string]measurement, col string, tol float64) (failures, checked []string) {
	names := make([]string, 0, len(base.Results))
	for name := range base.Results {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		raw, ok := base.Results[name][col]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: baseline has no %q column", name, col))
			continue
		}
		var want column
		if err := json.Unmarshal(raw, &want); err != nil {
			failures = append(failures, fmt.Sprintf("%s: baseline column %q: %v", name, col, err))
			continue
		}
		meas, ok := got[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: in baseline but not measured", name))
			continue
		}
		limit := want.NsPerOp * (1 + tol)
		status := "ok"
		if meas.nsPerOp > limit {
			failures = append(failures, fmt.Sprintf("%s: %.1f ns/op exceeds %.1f (baseline %.1f +%.1f%%)",
				name, meas.nsPerOp, limit, want.NsPerOp, tol*100))
			status = "FAIL"
		}
		if meas.hasAllocs && meas.allocsPerOp > want.AllocsPerOp {
			failures = append(failures, fmt.Sprintf("%s: %d allocs/op, baseline %d (no tolerance on allocations)",
				name, meas.allocsPerOp, want.AllocsPerOp))
			status = "FAIL"
		}
		checked = append(checked, fmt.Sprintf("%-20s %10.1f ns/op  (limit %10.1f)  %s", name, meas.nsPerOp, limit, status))
	}
	return failures, checked
}
