package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const benchOut = `goos: linux
goarch: amd64
pkg: hetlb/internal/gossip
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEngineStep/SameCost/paper-8         2500000       450.0 ns/op        0 B/op        0 allocs/op
BenchmarkEngineStep/OJTB/paper-8             2000000       600.0 ns/op        0 B/op        0 allocs/op
BenchmarkEngineStepObserved/SameCost/paper-8 1000000      1450.0 ns/op        0 B/op        0 allocs/op
PASS
`

func testBaseline() *baseline {
	// Mirrors BENCH_3.json, including the scalar speedup field that must not
	// break decoding.
	blob := `{
	  "benchmark": "BenchmarkEngineStep",
	  "results": {
	    "SameCost/paper": {"after": {"ns_per_op": 450.1, "allocs_per_op": 0}, "speedup": 14.4},
	    "OJTB/paper":     {"after": {"ns_per_op": 573.8, "allocs_per_op": 0}, "speedup": 10.8}
	  }
	}`
	var b baseline
	if err := json.Unmarshal([]byte(blob), &b); err != nil {
		panic(err)
	}
	return &b
}

func TestParseBenchStripsProcsAndFiltersVariants(t *testing.T) {
	got, err := parseBench(strings.NewReader(benchOut), "BenchmarkEngineStep")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d sub-benchmarks, want 2 (Observed variant must be excluded): %v", len(got), got)
	}
	if m := got["SameCost/paper"]; m.nsPerOp != 450 || !m.hasAllocs || m.allocsPerOp != 0 {
		t.Fatalf("SameCost/paper = %+v", m)
	}
}

func TestGatePassesWithinTolerance(t *testing.T) {
	got, _ := parseBench(strings.NewReader(benchOut), "BenchmarkEngineStep")
	// OJTB measured 600.0 vs baseline 573.8: +4.6%, outside 2% but inside 5%.
	if failures, _ := gate(testBaseline(), got, "after", 0.05); len(failures) != 0 {
		t.Fatalf("unexpected failures at 5%% tolerance: %v", failures)
	}
	failures, checked := gate(testBaseline(), got, "after", 0.02)
	if len(checked) != 2 {
		t.Fatalf("checked %d entries, want 2", len(checked))
	}
	if len(failures) != 1 || !strings.Contains(failures[0], "OJTB/paper") {
		t.Fatalf("want exactly the OJTB ns/op regression at 2%% tolerance, got %v", failures)
	}
}

func TestGateFailsOnAllocationsAndMissing(t *testing.T) {
	allocOut := "BenchmarkEngineStep/SameCost/paper-8  100  451.0 ns/op  16 B/op  1 allocs/op\n"
	got, _ := parseBench(strings.NewReader(allocOut), "BenchmarkEngineStep")
	failures, _ := gate(testBaseline(), got, "after", 0.02)
	// One failure for the allocation (no tolerance), one for the baseline
	// entry (OJTB/paper) that was never measured.
	if len(failures) != 2 {
		t.Fatalf("want 2 failures (alloc + missing), got %v", failures)
	}
	if !strings.Contains(failures[1], "allocs/op") || !strings.Contains(failures[0], "not measured") {
		t.Fatalf("unexpected failure set: %v", failures)
	}
}
