package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchOut = `goos: linux
goarch: amd64
pkg: hetlb/internal/gossip
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEngineStep/SameCost/paper-8         2500000       450.0 ns/op        0 B/op        0 allocs/op
BenchmarkEngineStep/OJTB/paper-8             2000000       600.0 ns/op        0 B/op        0 allocs/op
BenchmarkEngineStepObserved/SameCost/paper-8 1000000      1450.0 ns/op        0 B/op        0 allocs/op
PASS
`

func testBaseline() *baseline {
	// Mirrors BENCH_3.json, including the scalar speedup field that must not
	// break decoding.
	blob := `{
	  "benchmark": "BenchmarkEngineStep",
	  "results": {
	    "SameCost/paper": {"after": {"ns_per_op": 450.1, "allocs_per_op": 0}, "speedup": 14.4},
	    "OJTB/paper":     {"after": {"ns_per_op": 573.8, "allocs_per_op": 0}, "speedup": 10.8}
	  }
	}`
	var b baseline
	if err := json.Unmarshal([]byte(blob), &b); err != nil {
		panic(err)
	}
	return &b
}

func TestParseBenchStripsProcsAndFiltersVariants(t *testing.T) {
	got, err := parseBench(strings.NewReader(benchOut), "BenchmarkEngineStep")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d sub-benchmarks, want 2 (Observed variant must be excluded): %v", len(got), got)
	}
	if m := got["SameCost/paper"]; m.nsPerOp != 450 || !m.hasAllocs || m.allocsPerOp != 0 {
		t.Fatalf("SameCost/paper = %+v", m)
	}
}

func TestGatePassesWithinTolerance(t *testing.T) {
	got, _ := parseBench(strings.NewReader(benchOut), "BenchmarkEngineStep")
	// OJTB measured 600.0 vs baseline 573.8: +4.6%, outside 2% but inside 5%.
	if failures, _ := gate(testBaseline(), got, "after", 0.05); len(failures) != 0 {
		t.Fatalf("unexpected failures at 5%% tolerance: %v", failures)
	}
	failures, checked := gate(testBaseline(), got, "after", 0.02)
	if len(checked) != 2 {
		t.Fatalf("checked %d entries, want 2", len(checked))
	}
	if len(failures) != 1 || !strings.Contains(failures[0], "OJTB/paper") {
		t.Fatalf("want exactly the OJTB ns/op regression at 2%% tolerance, got %v", failures)
	}
}

func TestGateFailsOnAllocationsAndMissing(t *testing.T) {
	allocOut := "BenchmarkEngineStep/SameCost/paper-8  100  451.0 ns/op  16 B/op  1 allocs/op\n"
	got, _ := parseBench(strings.NewReader(allocOut), "BenchmarkEngineStep")
	failures, _ := gate(testBaseline(), got, "after", 0.02)
	// One failure for the allocation (no tolerance), one for the baseline
	// entry (OJTB/paper) that was never measured.
	if len(failures) != 2 {
		t.Fatalf("want 2 failures (alloc + missing), got %v", failures)
	}
	if !strings.Contains(failures[1], "allocs/op") || !strings.Contains(failures[0], "not measured") {
		t.Fatalf("unexpected failure set: %v", failures)
	}
}

func writeBenchFile(t *testing.T, blob string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "BENCH.json")
	if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestColumnMeasurementsGatesTwoFiles(t *testing.T) {
	// The against file improves one entry, regresses the other, and carries
	// an extra entry the baseline does not know (must be ignored).
	against := writeBenchFile(t, `{
	  "benchmark": "BenchmarkEngineStep",
	  "results": {
	    "SameCost/paper": {"after": {"ns_per_op": 300.0, "allocs_per_op": 0}},
	    "OJTB/paper":     {"after": {"ns_per_op": 700.0, "allocs_per_op": 0}},
	    "Extra/paper":    {"after": {"ns_per_op": 1.0, "allocs_per_op": 0}}
	  }
	}`)
	got, err := columnMeasurements(against, "after")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d entries, want 3", len(got))
	}
	if m := got["SameCost/paper"]; m.nsPerOp != 300 || !m.hasAllocs {
		t.Fatalf("SameCost/paper = %+v", m)
	}
	// OJTB regresses 573.8 -> 700.0 (+22%): fails at 10%, passes at 25%.
	failures, checked := gate(testBaseline(), got, "after", 0.10)
	if len(checked) != 2 {
		t.Fatalf("checked %d entries, want 2 (extra entry must be ignored)", len(checked))
	}
	if len(failures) != 1 || !strings.Contains(failures[0], "OJTB/paper") {
		t.Fatalf("want exactly the OJTB regression, got %v", failures)
	}
	if failures, _ := gate(testBaseline(), got, "after", 0.25); len(failures) != 0 {
		t.Fatalf("unexpected failures at 25%% tolerance: %v", failures)
	}
}

func TestColumnMeasurementsFlagsAllocRegression(t *testing.T) {
	against := writeBenchFile(t, `{
	  "results": {
	    "SameCost/paper": {"after": {"ns_per_op": 100.0, "allocs_per_op": 2}},
	    "OJTB/paper":     {"after": {"ns_per_op": 100.0, "allocs_per_op": 0}}
	  }
	}`)
	got, err := columnMeasurements(against, "after")
	if err != nil {
		t.Fatal(err)
	}
	failures, _ := gate(testBaseline(), got, "after", 0.50)
	if len(failures) != 1 || !strings.Contains(failures[0], "allocs/op") {
		t.Fatalf("want exactly the allocation regression, got %v", failures)
	}
}

func TestColumnMeasurementsMissingColumn(t *testing.T) {
	// An against file lacking the column yields no measurements, so every
	// baseline entry fails as unmeasured — a renamed column cannot silently
	// pass the gate.
	against := writeBenchFile(t, `{
	  "results": {
	    "SameCost/paper": {"other": {"ns_per_op": 1.0}}
	  }
	}`)
	got, err := columnMeasurements(against, "after")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("want no measurements, got %v", got)
	}
	if failures, _ := gate(testBaseline(), got, "after", 0.10); len(failures) != 2 {
		t.Fatalf("want both baseline entries unmeasured, got %v", failures)
	}
}
