package main

import (
	"flag"
	"fmt"

	"hetlb"
	"hetlb/internal/central"
	"hetlb/internal/core"
	"hetlb/internal/rng"
	"hetlb/internal/workload"
)

// cmdSim generates a synthetic system and runs a decentralized protocol on
// it, reporting the final makespan against the relevant bounds.
func cmdSim(args []string) error {
	fs := flag.NewFlagSet("sim", flag.ExitOnError)
	proto := fs.String("proto", "dlb2c", "protocol: dlb2c, ojtb, mjtb, homog")
	m1 := fs.Int("m1", 64, "machines in cluster 0 (or the whole cluster for homog/ojtb/mjtb)")
	m2 := fs.Int("m2", 32, "machines in cluster 1 (dlb2c only)")
	jobs := fs.Int("jobs", 768, "number of jobs")
	types := fs.Int("types", 4, "job types (mjtb only)")
	lo := fs.Int64("lo", 1, "minimum job cost")
	hi := fs.Int64("hi", 1000, "maximum job cost")
	steps := fs.Int("steps", 0, "pairwise exchange budget (default 5 per machine)")
	seed := fs.Uint64("seed", 1, "random seed")
	concurrent := fs.Bool("concurrent", false, "use the goroutine-per-machine runtime")
	shards := fs.Int("shards", 0, "run the sharded epoch engine with this many parallel shards; -1 picks one shard per core (results are identical for any shard count)")
	stable := fs.Bool("stable", false, "stop early at a verified stable schedule (sequential only)")
	var ob obsFlags
	ob.register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	gen := rng.New(*seed)
	sinks, err := ob.setup()
	if err != nil {
		return err
	}

	opt := hetlb.RunOptions{
		Seed:            gen.Uint64(),
		Concurrent:      *concurrent,
		Shards:          *shards,
		DetectStability: *stable,
		QuiesceStreak:   64,
		Metrics:         sinks.Metrics,
		Trace:           sinks.Trace,
		Spans:           sinks.Spans,
		Timeline:        sinks.Timeline,
	}

	switch *proto {
	case "dlb2c":
		tc := workload.UniformTwoCluster(gen, *m1, *m2, *jobs, *lo, *hi)
		opt.MaxExchanges = budget(*steps, *m1+*m2)
		initial := hetlb.RandomInitial(tc, gen.Uint64())
		fmt.Printf("initial Cmax: %d\n", initial.Makespan())
		res, err := hetlb.DLB2C(tc, initial, opt)
		if err != nil {
			return err
		}
		cent := central.RunCLB2C(tc).Makespan()
		lb := hetlb.TwoClusterLowerBound(tc)
		report(res, fmt.Sprintf("CLB2C (centralized 2-approx): %d; fractional LB: %.1f; Cmax/LB: %.3f",
			cent, lb, float64(res.Makespan)/lb))
	case "homog":
		id := workload.UniformIdentical(gen, *m1, *jobs, *lo, *hi)
		opt.MaxExchanges = budget(*steps, *m1)
		initial := hetlb.RandomInitial(id, gen.Uint64())
		fmt.Printf("initial Cmax: %d\n", initial.Makespan())
		res, err := hetlb.HomogeneousBalance(id, initial, opt)
		if err != nil {
			return err
		}
		lb := core.IdenticalLowerBound(id)
		report(res, fmt.Sprintf("LB: %d; Cmax/LB: %.3f", lb, float64(res.Makespan)/float64(lb)))
	case "ojtb":
		p := make([][]core.Cost, *m1)
		for i := range p {
			p[i] = []core.Cost{gen.IntRange(*lo, *hi)}
		}
		ty, err := core.NewTyped(p, make([]int, *jobs))
		if err != nil {
			return err
		}
		opt.MaxExchanges = budget(*steps, *m1)
		initial := hetlb.RandomInitial(ty, gen.Uint64())
		fmt.Printf("initial Cmax: %d\n", initial.Makespan())
		res, err := hetlb.OJTB(ty, initial, opt)
		if err != nil {
			return err
		}
		report(res, "one job type: converges to the optimum (Lemma 4)")
	case "mjtb":
		ty := workload.UniformTyped(gen, *m1, *jobs, *types, *lo, *hi)
		opt.MaxExchanges = budget(*steps, *m1)
		initial := hetlb.RandomInitial(ty, gen.Uint64())
		fmt.Printf("initial Cmax: %d\n", initial.Makespan())
		res, err := hetlb.MJTB(ty, initial, opt)
		if err != nil {
			return err
		}
		report(res, fmt.Sprintf("k=%d types: stable schedules are k-approximations (Theorem 5)", *types))
	default:
		return fmt.Errorf("unknown protocol %q", *proto)
	}
	return ob.flush(sinks)
}

func budget(steps, machines int) int {
	if steps > 0 {
		return steps
	}
	return 5 * machines
}

func report(res hetlb.Result, extra string) {
	fmt.Printf("final Cmax: %d after %d exchanges (converged: %v)\n",
		res.Makespan, res.Exchanges, res.Converged)
	fmt.Println(extra)
}
