package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"hetlb/internal/evaluation"
	"hetlb/internal/harness"
)

// cmdFigures regenerates the paper's evaluation through the parallel
// replication harness. By default it runs the scaled-down configurations
// (seconds, suitable for a smoke check); -paper switches to the full-scale
// systems of the paper and -full additionally includes the most expensive
// ones. The run is deterministic for a fixed -seed no matter what -parallel
// is set to.
func cmdFigures(args []string) error {
	fs := flag.NewFlagSet("figures", flag.ExitOnError)
	exp := fs.String("exp", "all", "which experiment to run (all, tableI, tableII, fig1, fig2a, fig2b, fig3, fig4, fig5, extk, extdyn, residual)")
	out := fs.String("out", "figures", "output directory for CSV files (\"\" disables CSV output)")
	paper := fs.Bool("paper", false, "run the paper-scale configurations instead of the scaled-down ones")
	full := fs.Bool("full", false, "with -paper: include the most expensive configurations too")
	seed := fs.Uint64("seed", 1, "base random seed")
	parallel := fs.Int("parallel", 0, "replication worker pool size (0 = GOMAXPROCS)")
	timeout := fs.Duration("timeout", 0, "abort the run after this wall time (0 = no limit)")
	progress := fs.Bool("progress", false, "report replication progress per experiment on stderr")
	var obs obsFlags
	obs.register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sinks, err := obs.setup()
	if err != nil {
		return err
	}
	if obs.timelineOut != "" {
		fmt.Fprintln(os.Stderr, "figures: a sweep has no single convergence trajectory; the timeline output will be empty (use `hetlb sim --timeline-out` for one run)")
	}

	// Ctrl-C cancels the harness cleanly: completed replications keep their
	// results, the metrics/trace outputs are still flushed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cfg := evaluation.Config{
		OutDir:  *out,
		Reduced: !*paper,
		Full:    *full,
		Seed:    *seed,
		Harness: harness.Options{
			Parallelism: *parallel,
			Timeout:     *timeout,
			Context:     ctx,
			Metrics:     sinks.Metrics,
			Trace:       sinks.Trace,
			Spans:       sinks.Spans,
		},
	}
	if *progress {
		cfg.Harness.OnProgress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rreplications: %d/%d", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	start := time.Now()
	runErr := evaluation.Run(cfg, *exp)
	if runErr == nil {
		fmt.Printf("evaluation complete in %v\n", time.Since(start).Round(time.Millisecond))
	}
	if err := obs.flush(sinks); err != nil {
		return err
	}
	return runErr
}
