package main

import (
	"flag"
	"fmt"
	"os"

	"hetlb/internal/explain"
	"hetlb/internal/obs/span"
	"hetlb/internal/obs/timeline"
)

// cmdExplain reads the observability exports of a finished run — the span
// trace (--span-out of sim/chaos/figures) and optionally the convergence
// timeline (--timeline-out) — and prints a post-run diagnosis: convergence
// point and stalls, session outcome and latency quantiles, per-session fault
// attribution, hottest machine pairs.
func cmdExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	spansPath := fs.String("spans", "", "span trace JSONL to analyze (required; \"-\" = stdin)")
	tlPath := fs.String("timeline", "", "convergence timeline (CSV or JSON) to analyze (optional)")
	topK := fs.Int("top", 5, "entries per ranked list (hottest pairs, most degraded sessions)")
	stall := fs.Int("stall", 8, "minimum consecutive non-improving timeline samples that count as a stall")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *spansPath == "" {
		return fmt.Errorf("explain: -spans is required (produce one with sim/chaos/figures --span-out)")
	}

	var spans []span.Span
	var hdr explain.Header
	err := withIn(*spansPath, func(f *os.File) error {
		var err error
		spans, hdr, err = explain.ReadSpans(f)
		return err
	})
	if err != nil {
		return err
	}
	var pts []timeline.Point
	if *tlPath != "" {
		err := withIn(*tlPath, func(f *os.File) error {
			var err error
			pts, err = explain.ReadTimeline(f)
			return err
		})
		if err != nil {
			return err
		}
	}
	report := explain.Analyze(spans, hdr, pts, explain.Options{TopK: *topK, StallPoints: *stall})
	return report.WriteText(os.Stdout)
}

// withIn runs fn on the named file ("-" = stdin), opening and closing it as
// needed — the input counterpart of withOut.
func withIn(path string, fn func(*os.File) error) error {
	if path == "-" {
		return fn(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return fn(f)
}
