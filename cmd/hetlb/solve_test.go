package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, content string) *os.File {
	t.Helper()
	path := filepath.Join(t.TempDir(), "matrix.csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestReadMatrixCommas(t *testing.T) {
	f := writeTemp(t, "1,2,3\n4,5,6\n")
	m, err := readMatrix(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 || len(m[0]) != 3 || m[1][2] != 6 {
		t.Fatalf("parsed %v", m)
	}
}

func TestReadMatrixWhitespaceAndBlankLines(t *testing.T) {
	f := writeTemp(t, "1 2\t3\n\n  4,5 ,6  \n")
	m, err := readMatrix(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 || m[1][1] != 5 {
		t.Fatalf("parsed %v", m)
	}
}

func TestReadMatrixErrors(t *testing.T) {
	if _, err := readMatrix(writeTemp(t, "")); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := readMatrix(writeTemp(t, "1,x,3\n")); err == nil {
		t.Fatal("non-numeric cost accepted")
	}
}
