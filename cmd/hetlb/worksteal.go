package main

import (
	"flag"
	"fmt"

	"hetlb"
	"hetlb/internal/core"
	"hetlb/internal/exact"
	"hetlb/internal/rng"
	"hetlb/internal/workload"
)

// cmdWorksteal simulates the work-stealing baseline, either on the
// Theorem 1 trap instance or on a generated unrelated system.
func cmdWorksteal(args []string) error {
	fs := flag.NewFlagSet("worksteal", flag.ExitOnError)
	trap := fs.Int64("trap", 0, "run the Table I trap instance with this n (0 = generated instance)")
	m := fs.Int("m", 16, "machines (generated instance)")
	jobs := fs.Int("jobs", 128, "jobs (generated instance)")
	lo := fs.Int64("lo", 1, "minimum cost")
	hi := fs.Int64("hi", 1000, "maximum cost")
	latency := fs.Int64("latency", 0, "steal probe latency in time units")
	seed := fs.Uint64("seed", 1, "random seed")
	var ob obsFlags
	ob.register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sinks, err := ob.setup()
	if err != nil {
		return err
	}

	var model core.CostModel
	var initial *core.Assignment
	if *trap > 0 {
		d, init := workload.WorkStealingTrap(*trap)
		model, initial = d, init
		fmt.Printf("Table I trap instance, n=%d (OPT = 2)\n", *trap)
	} else {
		gen := rng.New(*seed)
		d := workload.UniformDense(gen, *m, *jobs, *lo, *hi)
		model = d
		initial = hetlb.RandomInitial(d, gen.Uint64())
		fmt.Printf("generated unrelated instance: %d machines, %d jobs, costs U[%d,%d]\n",
			*m, *jobs, *lo, *hi)
	}
	st, err := hetlb.WorkStealingRun(model, initial, hetlb.WorkStealingOptions{
		Seed:         *seed,
		StealLatency: *latency,
		Metrics:      sinks.Metrics,
		Trace:        sinks.Trace,
		Spans:        sinks.Spans,
		Timeline:     sinks.Timeline,
	})
	if err != nil {
		return err
	}
	fmt.Printf("makespan: %d\n", st.Makespan)
	if st.FirstStealTime >= 0 {
		fmt.Printf("first successful steal at t=%d; %d steals, %d probes, %d jobs moved\n",
			st.FirstStealTime, st.Steals, st.Probes, st.JobsMoved)
	} else {
		fmt.Println("no steal ever succeeded")
	}
	if *trap > 0 {
		res := exact.Solve(model)
		fmt.Printf("OPT: %d → work stealing ratio %.1f (unbounded in n; Theorem 1)\n",
			res.Opt, float64(st.Makespan)/float64(res.Opt))
	} else if lb := core.LowerBound(model); lb > 0 {
		fmt.Printf("instance lower bound: %d → ratio ≤ %.2f of LB\n",
			lb, float64(st.Makespan)/float64(lb))
	}
	return ob.flush(sinks)
}
