// Command hetlb is the command-line front end of the library. Subcommands:
//
//	sim        run a decentralized balancing protocol on a generated system
//	markov     compute the stationary makespan distribution of the
//	           one-cluster model (Section VII.A)
//	worksteal  simulate work stealing, including the Theorem 1 trap
//	solve      read a cost matrix (CSV, one machine per line) on stdin and
//	           solve it exactly (small instances) and with the baselines
//	figures    regenerate the paper's evaluation (tables + figures) through
//	           the parallel replication harness
//	chaos      sweep message loss and machine churn against convergence of
//	           the message-passing runtime (fault-injection study)
//	explain    diagnose a finished run from its span trace and convergence
//	           timeline (stalls, fault attribution, session latencies)
//
// Run `hetlb <subcommand> -h` for flags.
package main

import (
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "sim":
		err = cmdSim(args)
	case "markov":
		err = cmdMarkov(args)
	case "worksteal":
		err = cmdWorksteal(args)
	case "explore":
		err = cmdExplore(args)
	case "solve":
		err = cmdSolve(args)
	case "figures":
		err = cmdFigures(args)
	case "chaos":
		err = cmdChaos(args)
	case "explain":
		err = cmdExplain(args)
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "hetlb: unknown subcommand %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hetlb:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: hetlb <subcommand> [flags]

subcommands:
  sim        run DLB2C / OJTB / MJTB / homogeneous balancing on a generated system
  markov     stationary makespan distribution of the one-cluster Markov model
  worksteal  simulate the work-stealing baseline (Algorithm 1)
  explore    enumerate reachable schedules / prove non-convergence (Prop. 8)
  solve      exactly solve a small cost matrix read from stdin
  figures    regenerate the paper's evaluation (Tables I/II, Figures 1-5,
             extensions) through the parallel replication harness
  chaos      sweep message loss and machine crashes against convergence time
             and final Cmax of the crash-tolerant message-passing runtime
  explain    diagnose a finished run from its span trace and timeline:
             convergence stalls, per-session fault attribution, hottest
             pairs, p50/p99 session latencies

sim, worksteal, chaos and figures accept observability flags: --metrics-out
(Prometheus text, or JSON with --metrics-json), --trace-out (Chrome
trace_event JSON, or --trace-format=jsonl), --span-out (causal span trace
JSONL), --timeline-out (convergence timeline, CSV or --timeline-format=json),
--pprof <addr>, and --debug-addr <addr> (live /metrics, /timeline.json,
/trace.jsonl, /spans.jsonl and /debug/pprof/ for the run's duration).
figures and chaos additionally accept --parallel (worker pool size; the
results — and the span trace — are identical for every value) and --timeout.

examples:
  hetlb sim -proto dlb2c -m1 64 -m2 32 -jobs 768 -steps 480
  hetlb sim -proto dlb2c --metrics-out=- --trace-out=trace.json
  hetlb sim -proto dlb2c --span-out=spans.jsonl --timeline-out=timeline.csv
  hetlb explain -spans spans.jsonl -timeline timeline.csv
  hetlb markov -m 6 -pmax 4
  hetlb worksteal -trap 1000
  hetlb figures --parallel 8 --metrics-out=-
  hetlb figures -paper -exp fig3 --parallel 8 --timeout 10m
  hetlb chaos -loss 0,0.1,0.3 -crashes 0,4 --parallel 8 --span-out=spans.jsonl
  echo '1,2,3
4,5,6' | hetlb solve
`)
}
