package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"

	"hetlb"
)

// obsFlags is the shared observability flag set: any subcommand that calls
// register gains --metrics-out / --trace-out / --span-out / --timeline-out /
// --pprof / --debug-addr.
type obsFlags struct {
	metricsOut     string
	metricsJSON    bool
	traceOut       string
	traceFormat    string
	traceCap       int
	spanOut        string
	spanCap        int
	timelineOut    string
	timelineFormat string
	timelineCap    int
	pprofAddr      string
	debugAddr      string
}

func (o *obsFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&o.metricsOut, "metrics-out", "", "write run metrics to this file after the run (\"-\" = stdout)")
	fs.BoolVar(&o.metricsJSON, "metrics-json", false, "emit metrics as JSON instead of Prometheus text")
	fs.StringVar(&o.traceOut, "trace-out", "", "write the event trace to this file after the run (\"-\" = stdout)")
	fs.StringVar(&o.traceFormat, "trace-format", "chrome", "trace format: chrome (trace_event JSON) or jsonl")
	fs.IntVar(&o.traceCap, "trace-cap", 1<<20, "event trace ring capacity (oldest events overwritten beyond it)")
	fs.StringVar(&o.spanOut, "span-out", "", "write the causal span trace (JSONL) to this file after the run (\"-\" = stdout)")
	fs.IntVar(&o.spanCap, "span-cap", 1<<18, "span trace ring capacity (oldest spans overwritten beyond it)")
	fs.StringVar(&o.timelineOut, "timeline-out", "", "write the convergence timeline to this file after the run (\"-\" = stdout)")
	fs.StringVar(&o.timelineFormat, "timeline-format", "csv", "timeline format: csv or json")
	fs.IntVar(&o.timelineCap, "timeline-cap", 1<<12, "timeline point budget (resolution halves beyond it)")
	fs.StringVar(&o.pprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for the run's duration")
	fs.StringVar(&o.debugAddr, "debug-addr", "", "serve the live debug endpoints (/metrics, /timeline.json, /trace.jsonl, /spans.jsonl, /debug/pprof/) on this address for the run's duration")
}

// obsSinks bundles the observability collectors a subcommand hands to the
// library. A nil field means the corresponding output was not requested.
type obsSinks struct {
	Metrics  *hetlb.MetricsRegistry
	Trace    *hetlb.EventTrace
	Spans    *hetlb.SpanTrace
	Timeline *hetlb.Timeline
}

// setup builds the collectors the flags ask for (nil when the corresponding
// output is disabled) and starts the pprof and debug servers if requested.
// --debug-addr forces every collector on, so the live endpoints always have
// something to serve.
func (o *obsFlags) setup() (*obsSinks, error) {
	switch o.traceFormat {
	case "chrome", "jsonl":
	default:
		return nil, fmt.Errorf("unknown trace format %q (want chrome or jsonl)", o.traceFormat)
	}
	switch o.timelineFormat {
	case "csv", "json":
	default:
		return nil, fmt.Errorf("unknown timeline format %q (want csv or json)", o.timelineFormat)
	}
	s := &obsSinks{}
	debug := o.debugAddr != ""
	if o.metricsOut != "" || debug {
		s.Metrics = hetlb.NewMetricsRegistry()
	}
	if o.traceOut != "" || debug {
		if o.traceCap <= 0 {
			return nil, fmt.Errorf("trace capacity must be positive")
		}
		s.Trace = hetlb.NewEventTrace(o.traceCap)
	}
	if o.spanOut != "" || debug {
		if o.spanCap <= 0 {
			return nil, fmt.Errorf("span capacity must be positive")
		}
		s.Spans = hetlb.NewSpanTrace(o.spanCap)
	}
	if o.timelineOut != "" || debug {
		if o.timelineCap < 2 {
			return nil, fmt.Errorf("timeline capacity must be at least 2")
		}
		s.Timeline = hetlb.NewTimeline(o.timelineCap)
	}
	if o.pprofAddr != "" {
		// Bind synchronously so an unusable address fails the command
		// instead of silently running without profiling.
		ln, err := net.Listen("tcp", o.pprofAddr)
		if err != nil {
			return nil, fmt.Errorf("pprof server: %w", err)
		}
		go http.Serve(ln, nil)
		fmt.Fprintf(os.Stderr, "pprof: serving on http://%s/debug/pprof/\n", ln.Addr())
	}
	if debug {
		ln, err := net.Listen("tcp", o.debugAddr)
		if err != nil {
			return nil, fmt.Errorf("debug server: %w", err)
		}
		go http.Serve(ln, debugMux(s))
		fmt.Fprintf(os.Stderr, "debug: serving on http://%s/ (metrics, timeline, traces, pprof)\n", ln.Addr())
	}
	return s, nil
}

// debugMux serves live snapshots of the run's collectors. Every collector is
// mutex-guarded and snapshots under the lock, so scraping mid-run is safe and
// never perturbs what is being measured beyond the lock hold.
func debugMux(s *obsSinks) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.Metrics.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		s.Metrics.WriteJSON(w)
	})
	mux.HandleFunc("/timeline.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		s.Timeline.WriteJSON(w)
	})
	mux.HandleFunc("/timeline.csv", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/csv")
		s.Timeline.WriteCSV(w)
	})
	mux.HandleFunc("/trace.jsonl", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/jsonl")
		s.Trace.WriteJSONL(w)
	})
	mux.HandleFunc("/spans.jsonl", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/jsonl")
		s.Spans.WriteJSONL(w)
	})
	// net/http/pprof registers on the default mux; delegate its subtree.
	mux.Handle("/debug/pprof/", http.DefaultServeMux)
	return mux
}

// flush writes the collected outputs to their destinations. Collectors that
// exist only for the debug server (no -out path) are skipped.
func (o *obsFlags) flush(s *obsSinks) error {
	if s.Metrics != nil && o.metricsOut != "" {
		err := withOut(o.metricsOut, func(f *os.File) error {
			if o.metricsJSON {
				return s.Metrics.WriteJSON(f)
			}
			return s.Metrics.WritePrometheus(f)
		})
		if err != nil {
			return fmt.Errorf("writing metrics: %w", err)
		}
	}
	if s.Trace != nil && o.traceOut != "" {
		if n := s.Trace.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "trace: ring overflowed, oldest %d events dropped (raise -trace-cap)\n", n)
		}
		err := withOut(o.traceOut, func(f *os.File) error {
			if o.traceFormat == "jsonl" {
				return s.Trace.WriteJSONL(f)
			}
			return s.Trace.WriteChromeTrace(f)
		})
		if err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
	}
	if s.Spans != nil && o.spanOut != "" {
		if n := s.Spans.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "spans: ring overflowed, oldest %d spans dropped (raise -span-cap)\n", n)
		}
		err := withOut(o.spanOut, func(f *os.File) error { return s.Spans.WriteJSONL(f) })
		if err != nil {
			return fmt.Errorf("writing spans: %w", err)
		}
	}
	if s.Timeline != nil && o.timelineOut != "" {
		err := withOut(o.timelineOut, func(f *os.File) error {
			if o.timelineFormat == "json" {
				return s.Timeline.WriteJSON(f)
			}
			return s.Timeline.WriteCSV(f)
		})
		if err != nil {
			return fmt.Errorf("writing timeline: %w", err)
		}
	}
	return nil
}

// withOut runs fn on the named file ("-" = stdout), creating and closing it
// as needed.
func withOut(path string, fn func(*os.File) error) error {
	if path == "-" {
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
