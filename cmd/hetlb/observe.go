package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"

	"hetlb"
)

// obsFlags is the shared observability flag set: any subcommand that calls
// register gains --metrics-out / --trace-out / --pprof.
type obsFlags struct {
	metricsOut  string
	metricsJSON bool
	traceOut    string
	traceFormat string
	traceCap    int
	pprofAddr   string
}

func (o *obsFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&o.metricsOut, "metrics-out", "", "write run metrics to this file after the run (\"-\" = stdout)")
	fs.BoolVar(&o.metricsJSON, "metrics-json", false, "emit metrics as JSON instead of Prometheus text")
	fs.StringVar(&o.traceOut, "trace-out", "", "write the event trace to this file after the run (\"-\" = stdout)")
	fs.StringVar(&o.traceFormat, "trace-format", "chrome", "trace format: chrome (trace_event JSON) or jsonl")
	fs.IntVar(&o.traceCap, "trace-cap", 1<<20, "event trace ring capacity (oldest events overwritten beyond it)")
	fs.StringVar(&o.pprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for the run's duration")
}

// setup builds the registry and tracer the flags ask for (nil when the
// corresponding output is disabled) and starts the pprof server if requested.
func (o *obsFlags) setup() (*hetlb.MetricsRegistry, *hetlb.EventTrace, error) {
	switch o.traceFormat {
	case "chrome", "jsonl":
	default:
		return nil, nil, fmt.Errorf("unknown trace format %q (want chrome or jsonl)", o.traceFormat)
	}
	var reg *hetlb.MetricsRegistry
	var tr *hetlb.EventTrace
	if o.metricsOut != "" {
		reg = hetlb.NewMetricsRegistry()
	}
	if o.traceOut != "" {
		if o.traceCap <= 0 {
			return nil, nil, fmt.Errorf("trace capacity must be positive")
		}
		tr = hetlb.NewEventTrace(o.traceCap)
	}
	if o.pprofAddr != "" {
		// Bind synchronously so an unusable address fails the command
		// instead of silently running without profiling.
		ln, err := net.Listen("tcp", o.pprofAddr)
		if err != nil {
			return nil, nil, fmt.Errorf("pprof server: %w", err)
		}
		go http.Serve(ln, nil)
		fmt.Fprintf(os.Stderr, "pprof: serving on http://%s/debug/pprof/\n", ln.Addr())
	}
	return reg, tr, nil
}

// flush writes the collected metrics and trace to their destinations.
func (o *obsFlags) flush(reg *hetlb.MetricsRegistry, tr *hetlb.EventTrace) error {
	if reg != nil {
		err := withOut(o.metricsOut, func(f *os.File) error {
			if o.metricsJSON {
				return reg.WriteJSON(f)
			}
			return reg.WritePrometheus(f)
		})
		if err != nil {
			return fmt.Errorf("writing metrics: %w", err)
		}
	}
	if tr != nil {
		if n := tr.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "trace: ring overflowed, oldest %d events dropped (raise -trace-cap)\n", n)
		}
		err := withOut(o.traceOut, func(f *os.File) error {
			if o.traceFormat == "jsonl" {
				return tr.WriteJSONL(f)
			}
			return tr.WriteChromeTrace(f)
		})
		if err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
	}
	return nil
}

// withOut runs fn on the named file ("-" = stdout), creating and closing it
// as needed.
func withOut(path string, fn func(*os.File) error) error {
	if path == "-" {
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
