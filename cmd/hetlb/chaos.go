package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"hetlb/internal/experiments"
	"hetlb/internal/harness"
	"hetlb/internal/plot"
)

// cmdChaos runs the graceful-degradation sweep: DLB2C over the
// message-passing runtime while the fault plan drops and duplicates
// messages and crashes machines, reporting convergence time and final Cmax
// per (loss rate, crash count) cell. Deterministic for a fixed -seed at any
// -parallel. With -shards the sweep instead targets the sharded epoch
// engine: crashes void matchings and lose or freeze jobs (message faults
// don't apply), and the table reports Cmax degradation against a
// fault-free run of the identical instance.
func cmdChaos(args []string) error {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	def := experiments.PaperChaos()
	sdef := experiments.PaperShardChaos()
	m1 := fs.Int("m1", def.M1, "machines in cluster 1")
	m2 := fs.Int("m2", def.M2, "machines in cluster 2")
	jobs := fs.Int("jobs", def.Jobs, "number of jobs")
	loss := fs.String("loss", "0,0.05,0.15,0.3", "comma-separated message loss rates in [0,1)")
	crashes := fs.String("crashes", "0,2,4", "comma-separated crash counts")
	runs := fs.Int("runs", def.Runs, "replications per cell")
	horizon := fs.Int64("horizon", def.Horizon, "virtual-time budget per run")
	seed := fs.Uint64("seed", def.Seed, "base random seed")
	parallel := fs.Int("parallel", 0, "replication worker pool size (0 = GOMAXPROCS)")
	timeout := fs.Duration("timeout", 0, "abort the run after this wall time (0 = no limit)")
	shards := fs.Int("shards", 0, "run the sharded epoch engine with this many shards (-1 = auto, 0 = use the message-passing runtime)")
	machines := fs.Int("m", sdef.Machines, "machines (sharded engine only)")
	types := fs.Int("types", sdef.Types, "job types (sharded engine only)")
	lose := fs.Float64("lose", sdef.LoseProb, "probability a crash loses the machine's jobs instead of freezing them (sharded engine only)")
	epochs := fs.Int("epochs", sdef.Epochs, "epoch budget per run (sharded engine only)")
	var obs obsFlags
	obs.register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shards != 0 {
		scfg := sdef
		scfg.Machines, scfg.Types = *machines, *types
		scfg.LoseProb, scfg.Epochs = *lose, *epochs
		scfg.Jobs, scfg.Runs, scfg.Seed = *jobs, *runs, *seed
		if *shards > 0 {
			scfg.Shards = *shards
		} else {
			scfg.Shards = 0 // AutoShards
		}
		var err error
		if scfg.CrashCounts, err = parseInts(*crashes); err != nil {
			return fmt.Errorf("-crashes: %w", err)
		}
		return runShardChaos(scfg, *parallel, *timeout, obs)
	}
	cfg := def
	cfg.M1, cfg.M2, cfg.Jobs = *m1, *m2, *jobs
	cfg.Runs, cfg.Horizon, cfg.Seed = *runs, *horizon, *seed
	var err error
	if cfg.LossRates, err = parseFloats(*loss); err != nil {
		return fmt.Errorf("-loss: %w", err)
	}
	if cfg.CrashCounts, err = parseInts(*crashes); err != nil {
		return fmt.Errorf("-crashes: %w", err)
	}

	sinks, err := obs.setup()
	if err != nil {
		return err
	}
	if obs.timelineOut != "" {
		fmt.Fprintln(os.Stderr, "chaos: a sweep has no single convergence trajectory; the timeline output will be empty (use `hetlb sim --timeline-out` for one run)")
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	results, runErr := experiments.ChaosWith(harness.Options{
		Parallelism: *parallel,
		Timeout:     *timeout,
		Context:     ctx,
		Metrics:     sinks.Metrics,
		Trace:       sinks.Trace,
		Spans:       sinks.Spans,
	}, cfg)
	if runErr == nil {
		fmt.Printf("%s", experiments.ChaosTable(results))
		fmt.Printf("%s", plot.ASCII("mean virtual time to 1.1×cent vs loss rate (horizon = never)",
			experiments.ChaosSeries(results, cfg.Horizon), 64, 12))
		fmt.Printf("chaos sweep complete in %v\n", time.Since(start).Round(time.Millisecond))
	}
	if err := obs.flush(sinks); err != nil {
		return err
	}
	return runErr
}

// runShardChaos drives the sharded-engine degradation sweep with the same
// observability plumbing as the message-passing sweep, so `hetlb explain`
// works on the recorded spans (crash/recover fault spans, voided sessions).
func runShardChaos(cfg experiments.ShardChaosConfig, parallel int, timeout time.Duration, obs obsFlags) error {
	sinks, err := obs.setup()
	if err != nil {
		return err
	}
	if obs.timelineOut != "" {
		fmt.Fprintln(os.Stderr, "chaos: a sweep has no single convergence trajectory; the timeline output will be empty (use `hetlb sim --timeline-out` for one run)")
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	results, runErr := experiments.ShardChaosWith(harness.Options{
		Parallelism: parallel,
		Timeout:     timeout,
		Context:     ctx,
		Metrics:     sinks.Metrics,
		Trace:       sinks.Trace,
		Spans:       sinks.Spans,
	}, cfg)
	if runErr == nil {
		fmt.Printf("%s", experiments.ShardChaosTable(results))
		fmt.Printf("%s", plot.ASCII("mean Cmax vs fault-free against crash count",
			experiments.ShardChaosSeries(results), 64, 12))
		fmt.Printf("sharded chaos sweep complete in %v\n", time.Since(start).Round(time.Millisecond))
	}
	if err := obs.flush(sinks); err != nil {
		return err
	}
	return runErr
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
