package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hetlb/internal/central"
	"hetlb/internal/core"
	"hetlb/internal/exact"
)

// cmdSolve reads a dense cost matrix from stdin (CSV: one machine per line,
// one job per column) and reports the exact optimum (when provable within
// the node budget) alongside the greedy baselines.
func cmdSolve(args []string) error {
	fs := flag.NewFlagSet("solve", flag.ExitOnError)
	budget := fs.Int64("budget", 50_000_000, "branch-and-bound node budget")
	if err := fs.Parse(args); err != nil {
		return err
	}
	matrix, err := readMatrix(os.Stdin)
	if err != nil {
		return err
	}
	d, err := core.NewDense(matrix)
	if err != nil {
		return err
	}
	if err := core.CheckModel(d); err != nil {
		return err
	}
	fmt.Printf("instance: %d machines × %d jobs; lower bound %d\n",
		d.NumMachines(), d.NumJobs(), core.LowerBound(d))

	ls := central.ListScheduling(d, nil)
	fmt.Printf("ECT greedy (List Scheduling): Cmax = %d\n", ls.Makespan())

	if d.NumMachines()*d.NumJobs() <= 4096 {
		if lst, err := central.LST(d); err == nil {
			fmt.Printf("LST (LP rounding, 2-approx): Cmax = %d (LP deadline T* = %d, %d LPs)\n",
				lst.Assignment.Makespan(), lst.Deadline, lst.LPSolves)
		}
	}

	res := exact.SolveBudget(d, *budget)
	if res.Proven {
		fmt.Printf("optimal: Cmax = %d (%d B&B nodes)\n", res.Opt, res.Nodes)
		for i := 0; i < d.NumMachines(); i++ {
			fmt.Printf("  machine %d (load %d): %v\n",
				i, res.Assignment.Load(i), res.Assignment.Jobs(i))
		}
	} else {
		fmt.Printf("best found: Cmax = %d (budget of %d nodes exhausted; not proven optimal)\n",
			res.Opt, *budget)
	}
	return nil
}

// readMatrix parses comma- or whitespace-separated integer rows.
func readMatrix(f *os.File) ([][]core.Cost, error) {
	var rows [][]core.Cost
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.FieldsFunc(line, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' })
		row := make([]core.Cost, 0, len(fields))
		for _, fstr := range fields {
			v, err := strconv.ParseInt(strings.TrimSpace(fstr), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad cost %q: %v", fstr, err)
			}
			row = append(row, v)
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("no matrix on stdin")
	}
	return rows, nil
}
