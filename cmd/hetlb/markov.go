package main

import (
	"flag"
	"fmt"

	"hetlb/internal/markov"
	"hetlb/internal/plot"
)

// cmdMarkov computes and prints the stationary makespan distribution of the
// one-cluster load-vector Markov chain (paper Section VII.A / Figure 2).
func cmdMarkov(args []string) error {
	fs := flag.NewFlagSet("markov", flag.ExitOnError)
	m := fs.Int("m", 6, "number of machines")
	pmax := fs.Int64("pmax", 4, "maximum job size")
	total := fs.Int64("total", 0, "total load ΣP (default: smallest for which the Theorem 10 bound is attainable)")
	tol := fs.Float64("tol", 1e-11, "power iteration tolerance")
	mc := fs.Int("mc", 0, "estimate by Monte Carlo with this many samples instead of exact enumeration (for large m/pmax)")
	seed := fs.Uint64("seed", 1, "Monte Carlo seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	w := *total
	if w == 0 {
		w = markov.MinimumTotalForBound(*m, *pmax)
	}
	if *mc > 0 {
		return markovMC(*m, *pmax, w, *mc, *seed)
	}
	fmt.Printf("building chain: m=%d pmax=%d ΣP=%d ...\n", *m, *pmax, w)
	chain, err := markov.Build(*m, *pmax, w)
	if err != nil {
		return err
	}
	fmt.Printf("sink component: %d states; Theorem 10 bound: %.1f; max reachable Cmax: %d\n",
		chain.NumStates(), chain.TheoremTenBound(), chain.MaxMakespan())
	pi, iters := chain.Stationary(*tol, 50000)
	fmt.Printf("stationary distribution after %d power iterations (residual %.2g)\n",
		iters, chain.StationaryResidual(pi))
	values, probs := chain.MakespanDistribution(pi)
	rows := make([][]string, 0, len(values))
	var mean float64
	for k, v := range values {
		rows = append(rows, []string{
			fmt.Sprint(v),
			fmt.Sprintf("%.3f", chain.NormalizedDeviation(v)),
			fmt.Sprintf("%.6f", probs[k]),
		})
		mean += float64(v) * probs[k]
	}
	fmt.Print(plot.Table([]string{"Cmax", "deviation/pmax", "probability"}, rows))
	fmt.Printf("mean Cmax: %.3f (balanced: %d)\n", mean, (w+int64(*m)-1)/int64(*m))
	return nil
}

// markovMC estimates the stationary makespan distribution by simulating the
// load-vector walk directly (no state enumeration).
func markovMC(m int, pmax, total int64, samples int, seed uint64) error {
	fmt.Printf("Monte Carlo: m=%d pmax=%d ΣP=%d, %d samples ...\n", m, pmax, total, samples)
	burnin := 200 * m
	s, err := markov.Sample(m, pmax, total, burnin, samples, 2*m, seed)
	if err != nil {
		return err
	}
	rows := make([][]string, 0, len(s.Values))
	for k, v := range s.Values {
		rows = append(rows, []string{
			fmt.Sprint(v),
			fmt.Sprintf("%.3f", s.NormalizedDeviation(v)),
			fmt.Sprintf("%.6f", s.Probs[k]),
		})
	}
	fmt.Print(plot.Table([]string{"Cmax", "deviation/pmax", "est. probability"}, rows))
	fmt.Printf("max observed Cmax: %d (Theorem 10 bound: %.1f)\n",
		s.MaxSeen, float64(total)/float64(m)+float64(m-1)/2*float64(pmax))
	return nil
}
