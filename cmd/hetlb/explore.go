package main

import (
	"flag"
	"fmt"

	"hetlb/internal/core"
	"hetlb/internal/protocol"
	"hetlb/internal/rng"
	"hetlb/internal/workload"
)

// cmdExplore enumerates the schedules reachable from an initial
// distribution under every DLB2C balancing sequence — the Proposition 8
// analysis — either on the built-in cycling instance or on a random one.
func cmdExplore(args []string) error {
	fs := flag.NewFlagSet("explore", flag.ExitOnError)
	builtin := fs.Bool("builtin", true, "use the built-in Proposition 8 instance (false: random instance)")
	m1 := fs.Int("m1", 2, "cluster 0 machines (random instance)")
	m2 := fs.Int("m2", 1, "cluster 1 machines (random instance)")
	jobs := fs.Int("jobs", 5, "jobs (random instance)")
	hi := fs.Int64("hi", 5, "maximum job cost (random instance)")
	seed := fs.Uint64("seed", 1, "random seed")
	maxStates := fs.Int("maxstates", 100000, "state cap")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var tc *core.TwoCluster
	var start *core.Assignment
	if *builtin {
		tc, start = workload.CycleInstance()
		fmt.Println("built-in Proposition 8 instance (2+1 machines, 5 jobs)")
	} else {
		gen := rng.New(*seed)
		tc = workload.UniformTwoCluster(gen, *m1, *m2, *jobs, 1, *hi)
		machineOf := make([]int, *jobs)
		for j := range machineOf {
			machineOf[j] = gen.Intn(*m1 + *m2)
		}
		var err error
		start, err = core.FromMachineOf(tc, machineOf)
		if err != nil {
			return err
		}
		fmt.Printf("random instance: %d+%d machines, %d jobs, costs U[1,%d], seed %d\n",
			*m1, *m2, *jobs, *hi, *seed)
	}

	proto := protocol.DLB2C{Model: tc}
	r := protocol.Explore(proto, start, *maxStates)
	fmt.Printf("reachable schedules: %d (truncated: %v)\n", r.States, r.Truncated)
	fmt.Printf("stable schedules:    %d\n", r.StableStates)
	fmt.Printf("makespan range:      [%d, %d]\n", r.MinMakespan, r.MaxMakespan)
	switch {
	case r.ProvesNonConvergence():
		fmt.Println("verdict: PROVEN non-convergent — no balancing sequence can ever stabilize")
		cyc := protocol.FindCycle(proto, start, *maxStates)
		if len(cyc) > 1 {
			fmt.Printf("explicit cycle of %d steps:\n", len(cyc)-1)
			for k, s := range cyc {
				fmt.Printf("  %d: %s\n", k, s)
			}
		}
	case r.Truncated:
		fmt.Println("verdict: inconclusive (state cap hit; raise -maxstates)")
	default:
		fmt.Println("verdict: at least one stable schedule is reachable")
	}
	return nil
}
