// Command figures regenerates every table and figure of the paper's
// evaluation section at full scale, printing each as text/ASCII and writing
// tidy CSV files for external plotting.
//
// Usage:
//
//	figures [-exp all|tableI|tableII|fig1|fig2a|fig2b|fig3|fig4|fig5|
//	              extk|extdyn|residual]
//	        [-out DIR] [-full] [-seed N]
//
// -full includes the expensive configurations (Figure 2a with pmax=16
// expands to ~1.8M Markov states and takes several minutes; Figure 5 with
// the 512+256 system).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"hetlb/internal/core"
	"hetlb/internal/experiments"
	"hetlb/internal/plot"
	"hetlb/internal/stats"
)

type runner struct {
	outDir string
	full   bool
	seed   uint64
}

func main() {
	exp := flag.String("exp", "all", "which experiment to run (all, tableI, tableII, fig1, fig2a, fig2b, fig3, fig4, fig5, extk, extdyn, residual)")
	out := flag.String("out", "figures", "output directory for CSV files")
	full := flag.Bool("full", false, "run the most expensive configurations too")
	seed := flag.Uint64("seed", 1, "base random seed")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	r := runner{outDir: *out, full: *full, seed: *seed}
	steps := map[string]func() error{
		"tableI":   r.tableI,
		"tableII":  r.tableII,
		"fig1":     r.figure1,
		"fig2a":    r.figure2a,
		"fig2b":    r.figure2b,
		"fig3":     r.figure3,
		"fig4":     r.figure4,
		"fig5":     r.figure5,
		"extk":     r.extKClusters,
		"extdyn":   r.extDynamic,
		"residual": r.residual,
	}
	order := []string{"tableI", "tableII", "fig1", "fig2a", "fig2b", "fig3", "fig4", "fig5", "extk", "extdyn", "residual"}
	if *exp != "all" {
		f, ok := steps[*exp]
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q (want one of %s)", *exp, strings.Join(order, ", ")))
		}
		if err := f(); err != nil {
			fatal(err)
		}
		return
	}
	for _, name := range order {
		if err := steps[name](); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}

func (r runner) writeCSV(name string, series []plot.Series) error {
	path := filepath.Join(r.outDir, name)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := plot.WriteCSV(f, series); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", path)
	return nil
}

func (r runner) tableI() error {
	fmt.Println("== Table I / Theorem 1: work stealing on the trap instance ==")
	ns := []core.Cost{10, 100, 1000, 10000, 100000}
	rows := experiments.TableI(ns, r.seed)
	var trows [][]string
	var xs, ys []float64
	for _, row := range rows {
		trows = append(trows, []string{
			fmt.Sprint(row.N), fmt.Sprint(row.FirstSteal), fmt.Sprint(row.Makespan),
			fmt.Sprint(row.Opt), fmt.Sprintf("%.1f", row.Ratio),
		})
		xs = append(xs, float64(row.N))
		ys = append(ys, row.Ratio)
	}
	fmt.Print(plot.Table([]string{"n", "first steal", "WS makespan", "OPT", "ratio"}, trows))
	fmt.Println("shape check: first steal at n, makespan n+1, OPT 2 → unbounded ratio ✓")
	return r.writeCSV("tableI.csv", []plot.Series{plot.NewSeries("ws-ratio", xs, ys)})
}

func (r runner) tableII() error {
	fmt.Println("== Table II / Proposition 2: pairwise-optimal trap ==")
	ns := []core.Cost{10, 100, 1000, 10000}
	rows := experiments.TableII(ns)
	var trows [][]string
	var xs, ys []float64
	for _, row := range rows {
		trows = append(trows, []string{
			fmt.Sprint(row.N), fmt.Sprint(row.TrapMakespan), fmt.Sprint(row.Opt),
			fmt.Sprint(row.PairwiseOptimal),
		})
		xs = append(xs, float64(row.N))
		ys = append(ys, float64(row.TrapMakespan)/float64(row.Opt))
	}
	fmt.Print(plot.Table([]string{"n", "trap Cmax", "OPT", "pairwise-optimal"}, trows))
	return r.writeCSV("tableII.csv", []plot.Series{plot.NewSeries("trap-ratio", xs, ys)})
}

func (r runner) figure1() error {
	fmt.Println("== Figure 1 / Proposition 8: DLB2C non-convergence ==")
	res := experiments.Figure1()
	fmt.Printf("reachable schedules: %d, stable: %d, proven non-convergent: %v\n",
		res.ReachableStates, res.StableStates, res.ProvenNonConvergent)
	fmt.Printf("explicit cycle (length %d):\n", len(res.CycleStates)-1)
	for k, s := range res.CycleStates {
		fmt.Printf("  step %d: %s\n", k, s)
	}
	xs := make([]float64, len(res.CycleMakespans))
	ys := make([]float64, len(res.CycleMakespans))
	for k, v := range res.CycleMakespans {
		xs[k] = float64(k)
		ys[k] = float64(v)
	}
	return r.writeCSV("figure1.csv", []plot.Series{plot.NewSeries("cycle-makespan", xs, ys)})
}

func (r runner) figure2a() error {
	fmt.Println("== Figure 2(a): stationary makespan pdf, m=6, varying pmax ==")
	pmaxes := []int64{2, 4, 8}
	if r.full {
		pmaxes = append(pmaxes, 16)
		fmt.Println("(-full: including pmax=16, ~1.8M states; this takes several minutes)")
	}
	curves, err := experiments.Figure2a(pmaxes)
	if err != nil {
		return err
	}
	series := experiments.Figure2Series(curves)
	fmt.Print(plot.ASCII("P(Cmax) vs normalized deviation (Cmax-⌈ΣP/m⌉)/pmax", series, 64, 16))
	for _, c := range curves {
		fmt.Printf("  pmax=%-3d states=%-8d mode=%.2f tail>1.5: %.4f\n", c.PMax, c.States, c.Mode, c.TailBeyond15)
	}
	return r.writeCSV("figure2a.csv", series)
}

func (r runner) figure2b() error {
	fmt.Println("== Figure 2(b): stationary makespan pdf, pmax=4, varying m ==")
	curves, err := experiments.Figure2b([]int{3, 4, 5, 6})
	if err != nil {
		return err
	}
	series := experiments.Figure2Series(curves)
	fmt.Print(plot.ASCII("P(Cmax) vs normalized deviation", series, 64, 16))
	for _, c := range curves {
		fmt.Printf("  m=%-2d states=%-8d mode=%.2f tail>1.5: %.4f\n", c.M, c.States, c.Mode, c.TailBeyond15)
	}
	return r.writeCSV("figure2b.csv", series)
}

func (r runner) simConfigs() []experiments.SimConfig {
	het := experiments.PaperHetero()
	hom := experiments.PaperHomogeneous()
	het.Seed, hom.Seed = r.seed+10, r.seed+20
	return []experiments.SimConfig{het, hom}
}

func (r runner) figure3() error {
	fmt.Println("== Figure 3: equilibrium makespan distribution, hetero vs homog ==")
	results := experiments.Figure3(r.simConfigs())
	var series []plot.Series
	for _, res := range results {
		h := res.Histogram(0, 3, 24)
		var xs, ys []float64
		for k := range h.Counts {
			xs = append(xs, h.BinCenter(k))
			ys = append(ys, h.Density(k))
		}
		series = append(series, plot.NewSeries(res.Config.Name, xs, ys))
		fmt.Printf("  %-22s %s\n", res.Config.Name, res.Summary)
	}
	fmt.Print(plot.ASCII("density of (Cmax-LB)/pmax after 30 exchanges/machine", series, 64, 14))
	return r.writeCSV("figure3.csv", series)
}

func (r runner) figure4() error {
	fmt.Println("== Figure 4: makespan trajectories over exchanges ==")
	runs := experiments.Figure4(r.simConfigs(), 2)
	series := experiments.Figure4Series(runs)
	fmt.Print(plot.ASCII("Cmax/centralized vs exchanges per machine", series, 64, 14))
	for _, run := range runs {
		fmt.Printf("  %-22s run %d: min %.3f, equilibrium oscillation %.3f\n",
			run.Config.Name, run.Run, run.MinReached, run.FinalOscillation)
	}
	return r.writeCSV("figure4.csv", series)
}

func (r runner) figure5() error {
	fmt.Println("== Figure 5: exchanges per machine to first reach 1.5×cent ==")
	cfgs := r.simConfigs()
	if r.full {
		large := experiments.PaperHeteroLarge()
		large.Seed = r.seed + 30
		cfgs = append(cfgs, large)
		fmt.Println("(-full: including the 512+256 system)")
	}
	results := experiments.Figure5(cfgs, 1.5)
	series := experiments.Figure5CDFSeries(results)
	fmt.Print(plot.ASCII("CDF over machines of exchanges at first crossing", series, 64, 14))
	for _, res := range results {
		fmt.Printf("  %-22s crossed %d/%d runs; per-machine exchanges: %s\n",
			res.Config.Name, res.CrossedRuns, res.TotalRuns, res.Summary)
	}
	return r.writeCSV("figure5.csv", series)
}

func (r runner) extKClusters() error {
	fmt.Println("== Extension: DLBKC equilibrium quality vs number of clusters ==")
	ks := []int{2, 3, 4, 6}
	results, err := experiments.ExtKClusters(ks, 8, 384, 1000, 10, 30, r.seed+40)
	if err != nil {
		return err
	}
	for _, res := range results {
		fmt.Printf("  k=%d: Cmax/LP-LB %s\n", res.K, res.Summary)
	}
	series := experiments.ExtKClustersSeries(results)
	fmt.Print(plot.ASCII("equilibrium Cmax / LP fractional LB vs k", series, 64, 12))
	return r.writeCSV("ext_kclusters.csv", series)
}

func (r runner) extDynamic() error {
	fmt.Println("== Extension: periodic balancing during execution (Section IV mode) ==")
	results, err := experiments.ExtDynamic([]int64{0, 50, 10, 2}, 16, 8, 384, 1000, 2, 10, r.seed+50)
	if err != nil {
		return err
	}
	fmt.Print(experiments.ExtDynamicTable(results))
	var series []plot.Series
	var xs, ys []float64
	for _, res := range results {
		x := float64(res.BalanceEvery)
		xs = append(xs, x)
		ys = append(ys, res.MeanFlow)
	}
	series = append(series, plot.NewSeries("mean flow vs balance period (0 = off)", xs, ys))
	return r.writeCSV("ext_dynamic.csv", series)
}

func (r runner) residual() error {
	fmt.Println("== Ablation: measured residual imbalance vs the Markov model's uniform assumption ==")
	res := experiments.ResidualCheck(96, 768, 1, 1000, 20000, r.seed+60)
	fmt.Printf("  %d balancing steps measured on the 96-machine/768-job system\n", res.Samples)
	fmt.Printf("  normalized residual |Δload|/pmax_pool: %s\n", res.Summary)
	fmt.Printf("  model assumes uniform {0..pmax} (mean 0.5); measured mean %.2f → model is conservative\n",
		res.Summary.Mean)
	// Histogram as a series.
	h := histOf(res.Normalized)
	var xs, ys []float64
	for k := range h.Counts {
		xs = append(xs, h.BinCenter(k))
		ys = append(ys, h.Density(k))
	}
	return r.writeCSV("residual.csv", []plot.Series{plot.NewSeries("measured residual density", xs, ys)})
}

func histOf(xs []float64) *stats.Histogram {
	h := stats.NewHistogram(0, 1.0001, 20)
	for _, v := range xs {
		h.Add(v)
	}
	return h
}
