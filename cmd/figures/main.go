// Command figures regenerates every table and figure of the paper's
// evaluation section at full scale, printing each as text/ASCII and writing
// tidy CSV files for external plotting. It is a thin front end over
// internal/evaluation, which runs every experiment's replications through
// the deterministic parallel harness (internal/harness): -parallel
// accelerates the evaluation without changing any number.
//
// Usage:
//
//	figures [-exp all|tableI|tableII|fig1|fig2a|fig2b|fig3|fig4|fig5|
//	              extk|extdyn|residual]
//	        [-out DIR] [-full] [-seed N] [-parallel N] [-timeout D]
//
// -full includes the expensive configurations (Figure 2a with pmax=16
// expands to ~1.8M Markov states and takes several minutes; Figure 5 with
// the 512+256 system).
//
// The hetlb CLI exposes the same evaluation as `hetlb figures`, with the
// scaled-down configurations by default and the shared observability flags.
package main

import (
	"flag"
	"fmt"
	"os"

	"hetlb/internal/evaluation"
	"hetlb/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "which experiment to run (all, tableI, tableII, fig1, fig2a, fig2b, fig3, fig4, fig5, extk, extdyn, residual)")
	out := flag.String("out", "figures", "output directory for CSV files")
	full := flag.Bool("full", false, "run the most expensive configurations too")
	seed := flag.Uint64("seed", 1, "base random seed")
	parallel := flag.Int("parallel", 0, "replication worker pool size (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "abort the run after this wall time (0 = no limit)")
	flag.Parse()

	cfg := evaluation.Config{
		OutDir: *out,
		Full:   *full,
		Seed:   *seed,
		Harness: harness.Options{
			Parallelism: *parallel,
			Timeout:     *timeout,
		},
	}
	if err := evaluation.Run(cfg, *exp); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}
