package hetlb_test

import (
	"fmt"

	"hetlb"
)

// ExampleDLB2C balances a small CPU+GPU system with the decentralized
// two-cluster protocol.
func ExampleDLB2C() {
	model, _ := hetlb.NewTwoCluster(1, 1,
		[]hetlb.Cost{1, 1, 8, 8},
		[]hetlb.Cost{8, 8, 1, 1})
	initial := hetlb.RoundRobin(model)
	res, _ := hetlb.DLB2C(model, initial, hetlb.RunOptions{
		Seed: 1, MaxExchanges: 100, DetectStability: true,
	})
	fmt.Println("makespan:", res.Makespan, "stable:", res.Converged)
	// Output:
	// makespan: 2 stable: true
}

// ExampleCLB2C runs the centralized 2-approximation on jobs biased to
// opposite clusters.
func ExampleCLB2C() {
	model, _ := hetlb.NewTwoCluster(1, 1,
		[]hetlb.Cost{1, 100},
		[]hetlb.Cost{100, 1})
	a := hetlb.CLB2C(model)
	fmt.Println("makespan:", a.Makespan())
	fmt.Println("job 0 on machine", a.MachineOf(0), "- job 1 on machine", a.MachineOf(1))
	// Output:
	// makespan: 1
	// job 0 on machine 0 - job 1 on machine 1
}

// ExampleWorkStealing reproduces Theorem 1's Table I trap: the first steal
// cannot happen before time n.
func ExampleWorkStealing() {
	n := hetlb.Cost(1000)
	model, _ := hetlb.NewDense([][]hetlb.Cost{
		{1, 1, n, n, n},
		{n, 1, 1, 1, 1},
		{n, n, 1, 1, 1},
	})
	initial := hetlb.NewAssignment(model)
	for j, m := range []int{1, 2, 0, 0, 0} {
		initial.Assign(j, m)
	}
	st, _ := hetlb.WorkStealing(model, initial, 1)
	fmt.Println("first steal:", st.FirstStealTime, "makespan:", st.Makespan, "optimal: 2")
	// Output:
	// first steal: 1000 makespan: 1001 optimal: 2
}

// ExampleOJTB shows optimal convergence with one job type (Lemma 4).
func ExampleOJTB() {
	// Three machines processing the one job type at speeds 2, 3 and 6
	// time units per job; nine jobs.
	model, _ := hetlb.NewTyped([][]hetlb.Cost{{2}, {3}, {6}}, make([]int, 9))
	initial := hetlb.RoundRobin(model)
	res, _ := hetlb.OJTB(model, initial, hetlb.RunOptions{
		Seed: 2, MaxExchanges: 1000, DetectStability: true,
	})
	opt, _, _ := hetlb.SolveExact(model, 1<<30)
	fmt.Println("reached:", res.Makespan, "optimal:", opt)
	// Output:
	// reached: 10 optimal: 10
}

// ExampleSolveExact computes an optimal schedule by branch and bound.
func ExampleSolveExact() {
	model, _ := hetlb.NewDense([][]hetlb.Cost{
		{4, 2, 9},
		{3, 8, 2},
	})
	opt, a, proven := hetlb.SolveExact(model, 1<<20)
	fmt.Println("optimal:", opt, "proven:", proven)
	fmt.Println("machine 0 gets:", a.Jobs(0))
	// Output:
	// optimal: 5 proven: true
	// machine 0 gets: [1]
}

// ExampleFractionalLowerBound judges a k-cluster schedule against the LP
// relaxation.
func ExampleFractionalLowerBound() {
	model, _ := hetlb.NewKCluster([]int{1, 1},
		[][]hetlb.Cost{{2, 10}, {10, 2}})
	lb, _ := hetlb.FractionalLowerBound(model)
	fmt.Printf("fractional bound: %.1f\n", lb)
	// Output:
	// fractional bound: 2.0
}
