package hetlb

import (
	"hetlb/internal/obs"
)

// This file exposes the observability layer. A MetricsRegistry collects
// named counters, gauges and histograms from every runtime that is handed
// one (via RunOptions.Metrics, MessagePassingOptions.Metrics or
// WorkStealingOptions.Metrics); an EventTrace is a bounded ring of typed
// protocol events. Both are concurrency-safe and allocation-free on the
// record path, so attaching them does not perturb what is being measured.

// MetricsRegistry holds named metric instruments. Export its contents with
// WritePrometheus (text exposition format) or WriteJSON (deterministic
// snapshot); registration is idempotent, so one registry can accumulate
// across repeated runs.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// EventTrace is a bounded ring buffer of protocol events (pair selections,
// migrations, messages, steals, makespan samples). When full it overwrites
// the oldest events and counts them in Dropped. Export with WriteJSONL or
// WriteChromeTrace (load the latter in a trace viewer such as Perfetto).
type EventTrace = obs.Tracer

// TraceEvent is one recorded event: Time is the runtime's own clock (step
// index, virtual time, or nanoseconds depending on the source), A and B the
// actor machines (-1 when not applicable), Value an event-specific quantity
// such as jobs moved.
type TraceEvent = obs.Event

// NewEventTrace returns a trace ring holding up to capacity events.
func NewEventTrace(capacity int) *EventTrace { return obs.NewTracer(capacity) }
