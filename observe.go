package hetlb

import (
	"hetlb/internal/obs"
	"hetlb/internal/obs/span"
	"hetlb/internal/obs/timeline"
)

// This file exposes the observability layer. A MetricsRegistry collects
// named counters, gauges and histograms from every runtime that is handed
// one (via RunOptions.Metrics, MessagePassingOptions.Metrics or
// WorkStealingOptions.Metrics); an EventTrace is a bounded ring of typed
// protocol events. Both are concurrency-safe and allocation-free on the
// record path, so attaching them does not perturb what is being measured.

// MetricsRegistry holds named metric instruments. Export its contents with
// WritePrometheus (text exposition format) or WriteJSON (deterministic
// snapshot); registration is idempotent, so one registry can accumulate
// across repeated runs.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// EventTrace is a bounded ring buffer of protocol events (pair selections,
// migrations, messages, steals, makespan samples). When full it overwrites
// the oldest events and counts them in Dropped. Export with WriteJSONL or
// WriteChromeTrace (load the latter in a trace viewer such as Perfetto).
type EventTrace = obs.Tracer

// TraceEvent is one recorded event: Time is the runtime's own clock (step
// index, virtual time, or nanoseconds depending on the source), A and B the
// actor machines (-1 when not applicable), Value an event-specific quantity
// such as jobs moved.
type TraceEvent = obs.Event

// NewEventTrace returns a trace ring holding up to capacity events.
func NewEventTrace(capacity int) *EventTrace { return obs.NewTracer(capacity) }

// SpanTrace is a bounded ring of causal span records: a hierarchy of
// run → replication → sweep/session → step intervals plus the fault point
// records (drops, retransmits, timeouts, crashes) parented to the session
// that suffered them. Spans are keyed on logical time only (step counters,
// virtual time, session sequence numbers — never the wall clock), and the
// message-passing runtime stamps each record with a Lamport clock, so a
// span trace is a pure function of the seed: bit-identical across worker
// counts and suitable for golden tests. Export with WriteJSONL; analyze
// with `hetlb explain`.
type SpanTrace = span.Recorder

// SpanRecord is one record of a SpanTrace: a closed interval [Start, End]
// in the emitting runtime's logical time unit, or a point (fault) record
// attached to its parent session.
type SpanRecord = span.Span

// SpanID identifies a span within one trace; 0 means "no span".
type SpanID = span.ID

// NewSpanTrace returns a span ring holding up to capacity records. When
// full it overwrites the oldest records and counts them in Dropped; the
// JSONL header makes truncation self-describing.
func NewSpanTrace(capacity int) *SpanTrace { return span.NewRecorder(capacity) }

// Timeline is a bounded per-step convergence recorder: makespan, imbalance
// against the ideal uniform load, cumulative migrations and messages, on
// the runtime's logical clock. When full it halves its resolution by
// deterministic power-of-two downsampling instead of dropping the tail, so
// the retained shape always covers the whole run and is a pure function of
// what was recorded. Export with WriteCSV or WriteJSON; analyze with
// `hetlb explain`.
type Timeline = timeline.Recorder

// TimelinePoint is one convergence sample of a Timeline.
type TimelinePoint = timeline.Point

// NewTimeline returns a timeline retaining up to capacity points
// (capacity >= 2).
func NewTimeline(capacity int) *Timeline { return timeline.NewRecorder(capacity) }
