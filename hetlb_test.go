package hetlb_test

import (
	"testing"

	"hetlb"
)

func mustTwoCluster(t *testing.T, m1, m2 int, p0, p1 []hetlb.Cost) *hetlb.TwoCluster {
	t.Helper()
	tc, err := hetlb.NewTwoCluster(m1, m2, p0, p1)
	if err != nil {
		t.Fatal(err)
	}
	return tc
}

func TestPublicDLB2CSequential(t *testing.T) {
	p0 := []hetlb.Cost{10, 80, 30, 20, 70, 60, 10, 90}
	p1 := []hetlb.Cost{70, 10, 40, 80, 20, 10, 60, 15}
	tc := mustTwoCluster(t, 2, 2, p0, p1)
	initial := hetlb.RandomInitial(tc, 7)
	res, err := hetlb.DLB2C(tc, initial, hetlb.RunOptions{Seed: 1, MaxExchanges: 2000, DetectStability: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != res.Assignment.Makespan() {
		t.Fatal("result makespan inconsistent")
	}
	if res.Converged && !hetlb.IsStable(tc, res.Assignment) {
		t.Fatal("converged but not stable")
	}
	if lb := hetlb.TwoClusterLowerBound(tc); float64(res.Makespan) < lb-1e9 {
		t.Fatal("makespan below lower bound")
	}
}

func TestPublicDLB2CConcurrent(t *testing.T) {
	p0 := make([]hetlb.Cost, 64)
	p1 := make([]hetlb.Cost, 64)
	for j := range p0 {
		p0[j] = hetlb.Cost(1 + (j*37)%100)
		p1[j] = hetlb.Cost(1 + (j*61)%100)
	}
	tc := mustTwoCluster(t, 4, 2, p0, p1)
	initial := hetlb.RoundRobin(tc)
	res, err := hetlb.DLB2C(tc, initial, hetlb.RunOptions{
		Seed: 2, MaxExchanges: 3000, Concurrent: true, QuiesceStreak: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Assignment.Complete() {
		t.Fatal("jobs lost")
	}
	if initial.Makespan() < res.Makespan {
		t.Fatal("concurrent balancing made the round-robin schedule worse")
	}
}

func TestPublicShardedRun(t *testing.T) {
	p0 := make([]hetlb.Cost, 96)
	p1 := make([]hetlb.Cost, 96)
	for j := range p0 {
		p0[j] = hetlb.Cost(1 + (j*37)%100)
		p1[j] = hetlb.Cost(1 + (j*61)%100)
	}
	tc := mustTwoCluster(t, 6, 6, p0, p1)
	run := func(shards int) hetlb.Result {
		res, err := hetlb.DLB2C(tc, hetlb.RoundRobin(tc), hetlb.RunOptions{
			Seed: 5, MaxExchanges: 600, Shards: shards,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	// The sharded engine must deliver the same result at any shard count,
	// including an explicit Shards: 1.
	r1, r2, r4 := run(1), run(2), run(4)
	if r2.Makespan != r4.Makespan || !r2.Assignment.Equal(r4.Assignment) || r2.Exchanges != r4.Exchanges {
		t.Fatal("sharded results differ across shard counts")
	}
	if r1.Makespan != r2.Makespan || !r1.Assignment.Equal(r2.Assignment) || r1.Exchanges != r2.Exchanges {
		t.Fatal("Shards: 1 differs from Shards: 2")
	}
	if r2.Makespan > hetlb.RoundRobin(tc).Makespan() {
		t.Fatal("sharded balancing made the round-robin schedule worse")
	}
	// AutoShards lets the engine pick the shard count; results must still
	// match any explicit count.
	ra := run(hetlb.AutoShards)
	if ra.Makespan != r1.Makespan || !ra.Assignment.Equal(r1.Assignment) || ra.Exchanges != r1.Exchanges {
		t.Fatal("AutoShards differs from explicit shard counts")
	}
	// Shards and Concurrent are mutually exclusive.
	if _, err := hetlb.DLB2C(tc, hetlb.RoundRobin(tc), hetlb.RunOptions{
		MaxExchanges: 10, Shards: 2, Concurrent: true,
	}); err == nil {
		t.Fatal("Shards+Concurrent accepted")
	}
	// Shard counts below AutoShards are rejected.
	if _, err := hetlb.DLB2C(tc, hetlb.RoundRobin(tc), hetlb.RunOptions{
		MaxExchanges: 10, Shards: -2,
	}); err == nil {
		t.Fatal("Shards: -2 accepted")
	}
}

func TestPublicShardedFaults(t *testing.T) {
	p0 := make([]hetlb.Cost, 96)
	p1 := make([]hetlb.Cost, 96)
	for j := range p0 {
		p0[j] = hetlb.Cost(1 + (j*37)%100)
		p1[j] = hetlb.Cost(1 + (j*61)%100)
	}
	tc := mustTwoCluster(t, 6, 6, p0, p1)
	plan := hetlb.FaultConfig{Crashes: []hetlb.Crash{
		{Machine: 3, At: 2, RecoverAt: 10},
		{Machine: 8, At: 4, LoseJobs: true},
	}}
	run := func(shards int) hetlb.Result {
		res, err := hetlb.DLB2C(tc, hetlb.RoundRobin(tc), hetlb.RunOptions{
			Seed: 5, MaxExchanges: 600, Shards: shards, Faults: &plan,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r4 := run(1), run(4)
	if r1.Makespan != r4.Makespan || !r1.Assignment.Equal(r4.Assignment) ||
		r1.Voided != r4.Voided || r1.JobsLost != r4.JobsLost {
		t.Fatal("faulted sharded results differ across shard counts")
	}
	if r1.Crashes != 2 || r1.Recoveries != 1 {
		t.Fatalf("crashes=%d recoveries=%d, want 2/1", r1.Crashes, r1.Recoveries)
	}
	if r1.JobsLost == 0 || r1.Voided == 0 {
		t.Fatalf("jobsLost=%d voided=%d, want both > 0", r1.JobsLost, r1.Voided)
	}
	if got := len(r1.Assignment.Unplaced()); got != r1.JobsLost {
		t.Fatalf("%d unplaced jobs for %d lost", got, r1.JobsLost)
	}
	// Faults require the sharded engine.
	if _, err := hetlb.DLB2C(tc, hetlb.RoundRobin(tc), hetlb.RunOptions{
		MaxExchanges: 10, Faults: &plan,
	}); err == nil {
		t.Fatal("Faults accepted without Shards")
	}
	// Message-level faults are rejected by the epoch engine.
	bad := hetlb.FaultConfig{DropProb: 0.1}
	if _, err := hetlb.DLB2C(tc, hetlb.RoundRobin(tc), hetlb.RunOptions{
		MaxExchanges: 10, Shards: 2, Faults: &bad,
	}); err == nil {
		t.Fatal("message faults accepted by the sharded engine")
	}
}

func TestPublicOJTBOptimal(t *testing.T) {
	// One job type: OJTB converges to OPT.
	ty, err := hetlb.NewTyped([][]hetlb.Cost{{3}, {5}, {4}}, make([]int, 10))
	if err != nil {
		t.Fatal(err)
	}
	initial := hetlb.RoundRobin(ty)
	res, err := hetlb.OJTB(ty, initial, hetlb.RunOptions{Seed: 3, MaxExchanges: 5000, DetectStability: true})
	if err != nil {
		t.Fatal(err)
	}
	opt, _, proven := hetlb.SolveExact(ty, 1<<40)
	if !proven {
		t.Fatal("exact solve not proven")
	}
	if !res.Converged || res.Makespan != opt {
		t.Fatalf("OJTB: converged=%v makespan=%d opt=%d", res.Converged, res.Makespan, opt)
	}
}

func TestPublicMJTBApproximation(t *testing.T) {
	// Two types on two machines, each type fast on one machine.
	ty, err := hetlb.NewTyped([][]hetlb.Cost{{1, 8}, {8, 1}}, []int{0, 0, 1, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	initial := hetlb.RoundRobin(ty)
	res, err := hetlb.MJTB(ty, initial, hetlb.RunOptions{Seed: 4, MaxExchanges: 5000, DetectStability: true})
	if err != nil {
		t.Fatal(err)
	}
	opt, _, proven := hetlb.SolveExact(ty, 1<<40)
	if !proven {
		t.Fatal("exact solve not proven")
	}
	if res.Makespan > 2*opt { // k = 2 types
		t.Fatalf("MJTB %d > 2·OPT %d", res.Makespan, opt)
	}
}

func TestPublicCLB2CTwoApprox(t *testing.T) {
	p0 := []hetlb.Cost{5, 9, 3, 7, 4, 6, 2, 8}
	p1 := []hetlb.Cost{6, 2, 7, 3, 8, 5, 9, 4}
	tc := mustTwoCluster(t, 2, 2, p0, p1)
	a := hetlb.CLB2C(tc)
	if !a.Complete() {
		t.Fatal("CLB2C incomplete")
	}
	opt, _, proven := hetlb.SolveExact(tc, 1<<40)
	if proven && a.Makespan() > 2*opt {
		t.Fatalf("CLB2C %d > 2·OPT %d", a.Makespan(), opt)
	}
}

func TestPublicWorkStealingTrap(t *testing.T) {
	// Reconstruct Table I through the public API.
	n := hetlb.Cost(500)
	d, err := hetlb.NewDense([][]hetlb.Cost{
		{1, 1, n, n, n},
		{n, 1, 1, 1, 1},
		{n, n, 1, 1, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	initial := hetlb.NewAssignment(d)
	for j, m := range []int{1, 2, 0, 0, 0} {
		initial.Assign(j, m)
	}
	st, err := hetlb.WorkStealing(d, initial, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.FirstStealTime != 500 || st.Makespan != 501 {
		t.Fatalf("trap: first steal %d, makespan %d", st.FirstStealTime, st.Makespan)
	}
}

func TestPublicBaselines(t *testing.T) {
	id, err := hetlb.NewIdentical(3, []hetlb.Cost{5, 4, 3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	ls := hetlb.ListScheduling(id)
	lpt := hetlb.LPT(id)
	if !ls.Complete() || !lpt.Complete() {
		t.Fatal("baseline incomplete")
	}
	if lb := hetlb.LowerBound(id); lpt.Makespan() < lb {
		t.Fatal("LPT beat the lower bound")
	}
}

func TestPublicErrors(t *testing.T) {
	id, _ := hetlb.NewIdentical(2, []hetlb.Cost{1, 2})
	incomplete := hetlb.NewAssignment(id)
	if _, err := hetlb.HomogeneousBalance(id, incomplete, hetlb.RunOptions{MaxExchanges: 10}); err == nil {
		t.Fatal("incomplete initial accepted")
	}
	full := hetlb.RoundRobin(id)
	if _, err := hetlb.HomogeneousBalance(id, full, hetlb.RunOptions{}); err == nil {
		t.Fatal("zero budget accepted")
	}
}

func TestPublicLST(t *testing.T) {
	d, err := hetlb.NewDense([][]hetlb.Cost{
		{4, 2, 9, 7},
		{3, 8, 2, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	a, deadline, err := hetlb.LST(d)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Complete() {
		t.Fatal("LST incomplete")
	}
	opt, _, proven := hetlb.SolveExact(d, 1<<30)
	if !proven {
		t.Fatal("exact not proven")
	}
	if deadline > opt {
		t.Fatalf("deadline %d above OPT %d", deadline, opt)
	}
	if a.Makespan() > 2*opt {
		t.Fatalf("LST %d > 2·OPT %d", a.Makespan(), opt)
	}
}

func TestPublicMessagePassing(t *testing.T) {
	p0 := make([]hetlb.Cost, 48)
	p1 := make([]hetlb.Cost, 48)
	for j := range p0 {
		p0[j] = hetlb.Cost(1 + (j*17)%100)
		p1[j] = hetlb.Cost(1 + (j*41)%100)
	}
	tc := mustTwoCluster(t, 4, 2, p0, p1)
	initial := hetlb.RoundRobin(tc)
	res, err := hetlb.DLB2CMessagePassing(tc, initial, hetlb.MessagePassingOptions{
		Seed: 1, Latency: 2, Period: 10, Horizon: 3000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Assignment.Complete() {
		t.Fatal("jobs lost in message passing")
	}
	if res.Sessions == 0 {
		t.Fatal("no sessions")
	}
	if res.Messages != 3*res.Sessions+2*res.Rejections {
		t.Fatal("message accounting broken")
	}
	if res.Makespan > initial.Makespan() {
		t.Fatal("message-passing balancing made things worse")
	}
	if res.Sent != res.Messages || res.Dropped != 0 || res.Retransmissions != 0 {
		t.Fatalf("perfect network reports degradation: %+v", res)
	}
}

func TestPublicMessagePassingWithFaults(t *testing.T) {
	p0 := make([]hetlb.Cost, 48)
	p1 := make([]hetlb.Cost, 48)
	for j := range p0 {
		p0[j] = hetlb.Cost(1 + (j*17)%100)
		p1[j] = hetlb.Cost(1 + (j*41)%100)
	}
	tc := mustTwoCluster(t, 4, 2, p0, p1)
	initial := hetlb.RoundRobin(tc)
	res, err := hetlb.DLB2CMessagePassing(tc, initial, hetlb.MessagePassingOptions{
		Seed: 2, Latency: 2, Period: 10, Horizon: 3000,
		Faults: &hetlb.FaultConfig{
			DropProb: 0.2, DupProb: 0.1, JitterMax: 3,
			Crashes: hetlb.RandomCrashes(7, tc.NumMachines(), 3000, 2, 200, 1),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every job is either placed or in the lost ledger, never both.
	placed := 0
	for j := 0; j < tc.NumJobs(); j++ {
		if res.Assignment.MachineOf(j) != -1 {
			placed++
		}
	}
	if placed+len(res.Lost) != tc.NumJobs() {
		t.Fatalf("%d placed + %d lost != %d jobs", placed, len(res.Lost), tc.NumJobs())
	}
	if res.Dropped == 0 || res.Retransmissions == 0 || res.Crashes != 2 {
		t.Fatalf("fault machinery not exercised: %+v", res)
	}
	if res.Sent <= res.Messages {
		t.Fatalf("Sent %d should exceed deliveries %d under 20%% loss", res.Sent, res.Messages)
	}
}

func TestPublicRunDynamic(t *testing.T) {
	p0 := make([]hetlb.Cost, 60)
	p1 := make([]hetlb.Cost, 60)
	for j := range p0 {
		p0[j] = hetlb.Cost(1 + (j*13)%50)
		p1[j] = hetlb.Cost(1 + (j*29)%50)
	}
	tc := mustTwoCluster(t, 3, 3, p0, p1)
	off, err := hetlb.RunDynamic(tc, hetlb.DynamicOptions{Seed: 1, MeanInterarrival: 2})
	if err != nil {
		t.Fatal(err)
	}
	on, err := hetlb.RunDynamic(tc, hetlb.DynamicOptions{Seed: 1, MeanInterarrival: 2, BalanceEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	if on.MeanFlow >= off.MeanFlow {
		t.Fatalf("balancing did not reduce mean flow: %v vs %v", on.MeanFlow, off.MeanFlow)
	}
	if on.JobsMoved == 0 || off.JobsMoved != 0 {
		t.Fatal("move accounting wrong")
	}
	// Static mode needs Initial.
	if _, err := hetlb.RunDynamic(tc, hetlb.DynamicOptions{Seed: 2}); err == nil {
		t.Fatal("static mode without Initial accepted")
	}
	static, err := hetlb.RunDynamic(tc, hetlb.DynamicOptions{Seed: 3, BalanceEvery: 4, Initial: hetlb.RoundRobin(tc)})
	if err != nil {
		t.Fatal(err)
	}
	if static.Makespan <= 0 {
		t.Fatal("static run produced no makespan")
	}
}
