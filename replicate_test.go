package hetlb_test

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"hetlb"
)

// TestReplicateDeterministicMonteCarlo drives the public harness facade the
// way a user would: a small Monte-Carlo study over random two-cluster
// instances, checked to be independent of the worker count.
func TestReplicateDeterministicMonteCarlo(t *testing.T) {
	study := func(parallelism int) []float64 {
		out, err := hetlb.Replicate(hetlb.ReplicationOptions{Parallelism: parallelism}, 11, 12,
			func(rep *hetlb.Replication) (float64, error) {
				p0 := make([]hetlb.Cost, 48)
				p1 := make([]hetlb.Cost, 48)
				for j := range p0 {
					p0[j] = hetlb.Cost(rep.RNG.IntRange(1, 100))
					p1[j] = hetlb.Cost(rep.RNG.IntRange(1, 100))
				}
				tc, err := hetlb.NewTwoCluster(4, 2, p0, p1)
				if err != nil {
					return 0, err
				}
				initial := hetlb.RandomInitial(tc, rep.RNG.Uint64())
				res, err := hetlb.DLB2C(tc, initial, hetlb.RunOptions{
					Seed:         rep.RNG.Uint64(),
					MaxExchanges: 6 * 20,
				})
				if err != nil {
					return 0, err
				}
				return float64(res.Makespan) / hetlb.TwoClusterLowerBound(tc), nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	seq := study(1)
	par := study(4)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel study changed the numbers:\nseq %v\npar %v", seq, par)
	}
	for _, ratio := range seq {
		if ratio < 1-1e-9 || ratio > 4 {
			t.Fatalf("implausible Cmax/LB ratio %v", ratio)
		}
	}
}

func TestReplicateSurfacesErrors(t *testing.T) {
	boom := errors.New("boom")
	_, err := hetlb.Replicate(hetlb.ReplicationOptions{Parallelism: 2}, 1, 8,
		func(rep *hetlb.Replication) (int, error) {
			if rep.Index%3 == 1 {
				return 0, boom
			}
			return rep.Index, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestReplicateTimeout(t *testing.T) {
	_, err := hetlb.Replicate(hetlb.ReplicationOptions{Parallelism: 1, Timeout: 10 * time.Millisecond}, 1, 1000,
		func(rep *hetlb.Replication) (int, error) {
			time.Sleep(time.Millisecond)
			return 0, nil
		})
	if err == nil {
		t.Fatal("timed-out study reported success")
	}
}

func TestDeriveSeedIsPure(t *testing.T) {
	if hetlb.DeriveSeed(1, 2, 3) != hetlb.DeriveSeed(1, 2, 3) {
		t.Fatal("DeriveSeed not pure")
	}
	if hetlb.DeriveSeed(1, 2) == hetlb.DeriveSeed(1, 3) {
		t.Fatal("DeriveSeed ignores keys")
	}
}

func TestReplicateMetrics(t *testing.T) {
	reg := hetlb.NewMetricsRegistry()
	tr := hetlb.NewEventTrace(256)
	_, err := hetlb.Replicate(hetlb.ReplicationOptions{Metrics: reg, Trace: tr}, 5, 10,
		func(rep *hetlb.Replication) (int, error) { return rep.Index, nil })
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("harness_replications_completed_total", "").Value(); got != 10 {
		t.Fatalf("completed counter = %d", got)
	}
	if tr.Len() != 20 { // one start + one end event per replication
		t.Fatalf("trace has %d events", tr.Len())
	}
}
