// Job-type scenario (Section V of the paper): a service where most work
// falls into a handful of query classes — "simple queries can represent
// most of the jobs of a system". Machines are fully heterogeneous, but jobs
// of the same class cost the same on a given machine, so MJTB applies and
// converges to a k-approximation (Theorem 5).
//
//	go run ./examples/jobtypes
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hetlb"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	const (
		machines = 8
		types    = 3 // point lookups, range scans, aggregation queries
		jobs     = 120
	)
	typeNames := []string{"lookup", "scan", "aggregate"}

	// Per (machine, type) costs: every machine has its own profile (fast
	// disks, big caches, many cores, ...), so the same query class costs
	// differently everywhere — the unrelated model.
	p := make([][]hetlb.Cost, machines)
	for i := range p {
		p[i] = make([]hetlb.Cost, types)
		for t := range p[i] {
			p[i][t] = hetlb.Cost(5 + rng.Intn(45))
		}
	}
	typeOf := make([]int, jobs)
	for j := range typeOf {
		typeOf[j] = rng.Intn(types)
	}
	model, err := hetlb.NewTyped(p, typeOf)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("per-machine cost of each query class:")
	for i := range p {
		fmt.Printf("  machine %d:", i)
		for t, c := range p[i] {
			fmt.Printf("  %s=%d", typeNames[t], c)
		}
		fmt.Println()
	}

	initial := hetlb.RandomInitial(model, 99)
	fmt.Printf("\nqueries land on random machines: initial Cmax = %d\n", initial.Makespan())

	res, err := hetlb.MJTB(model, initial, hetlb.RunOptions{
		Seed:            3,
		MaxExchanges:    5000,
		DetectStability: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MJTB: Cmax = %d after %d exchanges (stable: %v)\n",
		res.Makespan, res.Exchanges, res.Converged)

	if opt, _, proven := hetlb.SolveExact(model, 200_000_000); proven {
		fmt.Printf("optimal Cmax = %d → MJTB ratio %.2f (Theorem 5 bound: %d with k=%d types)\n",
			opt, float64(res.Makespan)/float64(opt), types, types)
	} else {
		fmt.Printf("instance lower bound = %d → MJTB ratio ≤ %.2f of LB\n",
			hetlb.LowerBound(model), float64(res.Makespan)/float64(hetlb.LowerBound(model)))
	}
}
