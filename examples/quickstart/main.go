// Quickstart: balance a small CPU+GPU cluster with DLB2C and compare the
// result against the centralized CLB2C schedule and the lower bound.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hetlb"
)

func main() {
	// A toy system: 3 CPU nodes (cluster 0) and 2 GPU nodes (cluster 1).
	// Eight jobs; some favor the CPUs, some the GPUs, some are neutral.
	cpuCost := []hetlb.Cost{20, 90, 35, 80, 25, 70, 40, 85}
	gpuCost := []hetlb.Cost{85, 15, 30, 20, 90, 25, 45, 10}
	model, err := hetlb.NewTwoCluster(3, 2, cpuCost, gpuCost)
	if err != nil {
		log.Fatal(err)
	}

	// Jobs arrive wherever they were submitted: an arbitrary initial
	// distribution (the decentralized, a-priori setting of the paper).
	initial := hetlb.RandomInitial(model, 42)
	fmt.Printf("initial distribution: %v\n", initial)

	// Every machine repeatedly picks a random peer and the pair
	// rebalances: Greedy Load Balancing within a cluster, CLB2C across
	// clusters (Algorithm 7 of the paper).
	res, err := hetlb.DLB2C(model, initial, hetlb.RunOptions{
		Seed:            7,
		MaxExchanges:    500,
		DetectStability: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after %d pairwise exchanges: %v\n", res.Exchanges, res.Assignment)
	fmt.Printf("converged to a stable schedule: %v\n", res.Converged)

	// Reference points.
	cent := hetlb.CLB2C(model)
	opt, _, proven := hetlb.SolveExact(model, 1<<30)
	fmt.Printf("centralized CLB2C makespan: %d\n", cent.Makespan())
	if proven {
		fmt.Printf("optimal makespan: %d  (DLB2C/OPT = %.2f — Theorem 7 guarantees ≤ 2 when stable)\n",
			opt, float64(res.Makespan)/float64(opt))
	}
}
