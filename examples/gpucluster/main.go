// GPU-cluster scenario: the workload the paper's introduction motivates — a
// cluster where CPUs and GPUs are *unrelated* (a kernel-heavy job flies on a
// GPU and crawls on a CPU, a branchy job the other way round). The example
// compares three ways of placing one batch of jobs:
//
//  1. Work stealing from the submission-time distribution (the a-posteriori
//     baseline the paper argues against),
//  2. decentralized DLB2C (a-priori pairwise balancing), and
//  3. the centralized CLB2C reference.
//
// go run ./examples/gpucluster
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hetlb"
)

const (
	numCPU  = 24
	numGPU  = 12
	numJobs = 288
)

func main() {
	rng := rand.New(rand.NewSource(2015))

	// Three job families, as in real mixed clusters:
	//   - "kernel" jobs: 8–16× faster on the GPU,
	//   - "branchy" jobs: 4–8× faster on the CPUs,
	//   - "neutral" jobs: similar either way.
	cpuCost := make([]hetlb.Cost, numJobs)
	gpuCost := make([]hetlb.Cost, numJobs)
	for j := 0; j < numJobs; j++ {
		base := hetlb.Cost(50 + rng.Intn(400))
		switch j % 3 {
		case 0: // kernel
			gpuCost[j] = base
			cpuCost[j] = base * hetlb.Cost(8+rng.Intn(9))
		case 1: // branchy
			cpuCost[j] = base
			gpuCost[j] = base * hetlb.Cost(4+rng.Intn(5))
		default: // neutral
			cpuCost[j] = base
			gpuCost[j] = base + hetlb.Cost(rng.Intn(100)) - 50
			if gpuCost[j] < 1 {
				gpuCost[j] = 1
			}
		}
	}
	model, err := hetlb.NewTwoCluster(numCPU, numGPU, cpuCost, gpuCost)
	if err != nil {
		log.Fatal(err)
	}

	// Jobs are submitted round-robin, oblivious to affinity — exactly the
	// kind of initial distribution that traps work stealing.
	submitted := hetlb.RoundRobin(model)

	ws, err := hetlb.WorkStealing(model, submitted, 1)
	if err != nil {
		log.Fatal(err)
	}

	balanced := submitted.Clone()
	res, err := hetlb.DLB2C(model, balanced, hetlb.RunOptions{
		Seed:         2,
		MaxExchanges: (numCPU + numGPU) * 5, // five exchanges per machine
	})
	if err != nil {
		log.Fatal(err)
	}
	// After the a-priori balancing, execution needs no further movement;
	// the makespan is just the schedule's Cmax.
	cent := hetlb.CLB2C(model)
	lb := hetlb.TwoClusterLowerBound(model)

	fmt.Printf("%d CPU nodes + %d GPU nodes, %d jobs (kernel/branchy/neutral mix)\n\n",
		numCPU, numGPU, numJobs)
	fmt.Printf("%-42s %8s %12s\n", "strategy", "Cmax", "vs frac. LB")
	fmt.Printf("%-42s %8d %11.2fx\n", "work stealing from submission order", ws.Makespan,
		float64(ws.Makespan)/lb)
	fmt.Printf("%-42s %8d %11.2fx\n",
		fmt.Sprintf("DLB2C, 5 exchanges/machine (%d total)", res.Exchanges),
		res.Makespan, float64(res.Makespan)/lb)
	fmt.Printf("%-42s %8d %11.2fx\n", "CLB2C (centralized 2-approx)", cent.Makespan(),
		float64(cent.Makespan())/lb)
	fmt.Printf("\nwork stealing moved %d of %d jobs during execution;\n", ws.JobsMoved, numJobs)
	fmt.Printf("DLB2C moved them *before* execution, with only pairwise exchanges.\n")
}
