// k-cluster scenario: the extension the paper names as future work
// ("extension to more than two clusters of machines"). A modern
// supercomputer node pool with four hardware generations: big-core CPUs,
// many-core CPUs, GPUs and FPGAs. DLBKC balances pairwise exactly like
// DLB2C, treating each cross-generation pair as a tiny two-cluster CLB2C
// problem; quality is judged against the LP fractional lower bound.
//
//	go run ./examples/kclusters
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hetlb"
)

func main() {
	rng := rand.New(rand.NewSource(4))

	sizes := []int{16, 16, 8, 4} // big-core, many-core, GPU, FPGA
	names := []string{"big-core", "many-core", "gpu", "fpga"}
	const jobs = 384

	// Each job has a per-generation cost; generations are good at
	// different job shapes (fully unrelated across clusters).
	p := make([][]hetlb.Cost, len(sizes))
	for c := range p {
		p[c] = make([]hetlb.Cost, jobs)
	}
	for j := 0; j < jobs; j++ {
		base := 50 + rng.Intn(300)
		favorite := rng.Intn(len(sizes))
		for c := range sizes {
			mult := 1
			if c != favorite {
				mult = 2 + rng.Intn(6)
			}
			p[c][j] = hetlb.Cost(base * mult)
		}
	}
	model, err := hetlb.NewKCluster(sizes, p)
	if err != nil {
		log.Fatal(err)
	}

	initial := hetlb.RandomInitial(model, 11)
	fmt.Printf("4 machine generations (%v machines), %d jobs\n", sizes, jobs)
	fmt.Printf("initial Cmax (random submission): %d\n", initial.Makespan())

	res, err := hetlb.DLBKC(model, initial, hetlb.RunOptions{
		Seed:         12,
		MaxExchanges: model.NumMachines() * 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	lb, err := hetlb.FractionalLowerBound(model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after %d pairwise exchanges: Cmax = %d\n", res.Exchanges, res.Makespan)
	fmt.Printf("LP fractional lower bound: %.1f → Cmax/LB = %.2f\n",
		lb, float64(res.Makespan)/lb)

	// Where did each job family end up? Count jobs per cluster.
	perCluster := make([]int, len(sizes))
	machine := 0
	for c, s := range sizes {
		for k := 0; k < s; k++ {
			perCluster[c] += len(res.Assignment.Jobs(machine))
			machine++
		}
	}
	fmt.Println("jobs per generation after balancing:")
	for c, n := range perCluster {
		fmt.Printf("  %-9s %3d jobs on %2d machines\n", names[c], n, sizes[c])
	}
}
