// Non-convergence demo (Proposition 8 / Section VII): DLB2C has no
// termination guarantee — on some instances every reachable schedule can
// still be improved by *some* pair, so the system cycles forever. The paper
// shows the dynamic equilibrium is nevertheless good. This example runs
// DLB2C on such an instance and on a healthy instance side by side.
//
//	go run ./examples/nonconvergence
package main

import (
	"fmt"
	"log"

	"hetlb"
)

func main() {
	// The 5-job, 3-machine (2+1 clusters) instance from the repository's
	// Proposition 8 reproduction (found by cmd/findcycle): from this
	// initial placement, 19 schedules are reachable and none is stable.
	model, err := hetlb.NewTwoCluster(2, 1,
		[]hetlb.Cost{1, 4, 2, 1, 5},
		[]hetlb.Cost{3, 2, 1, 1, 2})
	if err != nil {
		log.Fatal(err)
	}
	initial := hetlb.NewAssignment(model)
	for j, m := range []int{1, 0, 1, 0, 1} {
		initial.Assign(j, m)
	}

	fmt.Println("cycling instance (Proposition 8):")
	fmt.Printf("  start: %v\n", initial)
	for _, budget := range []int{100, 1000, 10000} {
		run := initial.Clone()
		res, err := hetlb.DLB2C(model, run, hetlb.RunOptions{
			Seed:            hetlb.DeriveSeed(42, uint64(budget)),
			MaxExchanges:    budget,
			DetectStability: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  after %5d exchanges: Cmax = %d, stable: %v\n",
			budget, res.Makespan, res.Converged)
	}
	opt, _, _ := hetlb.SolveExact(model, 1<<30)
	fmt.Printf("  it never stabilizes — yet Cmax stays within 2× of OPT=%d (dynamic equilibrium).\n\n", opt)

	// A benign instance for contrast: strongly cluster-biased jobs let
	// DLB2C settle.
	benign, err := hetlb.NewTwoCluster(2, 2,
		[]hetlb.Cost{2, 2, 90, 90, 3, 88},
		[]hetlb.Cost{88, 90, 3, 2, 90, 2})
	if err != nil {
		log.Fatal(err)
	}
	start := hetlb.RoundRobin(benign)
	res, err := hetlb.DLB2C(benign, start, hetlb.RunOptions{
		Seed:            5,
		MaxExchanges:    10000,
		DetectStability: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("benign instance:")
	fmt.Printf("  after %d exchanges: Cmax = %d, stable: %v\n",
		res.Exchanges, res.Makespan, res.Converged)
	if res.Converged {
		opt2, _, _ := hetlb.SolveExact(benign, 1<<30)
		fmt.Printf("  stable ⇒ 2-approximation (Theorem 7): Cmax/OPT = %.2f\n",
			float64(res.Makespan)/float64(opt2))
	}
}
