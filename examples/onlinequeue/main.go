// Online-queue scenario (Section IV of the paper): a service where jobs
// keep arriving at random machines of a CPU+GPU cluster while work is being
// executed. The a-priori balancer runs *periodically, concurrently with the
// application* — the paper's argument for a-priori balancing over
// submission-time-only placement. The example sweeps the balancing period
// and shows the traffic/latency trade-off.
//
//	go run ./examples/onlinequeue
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hetlb"
)

func main() {
	rng := rand.New(rand.NewSource(99))

	const (
		cpus = 12
		gpus = 6
		jobs = 360
	)
	cpuCost := make([]hetlb.Cost, jobs)
	gpuCost := make([]hetlb.Cost, jobs)
	for j := 0; j < jobs; j++ {
		base := hetlb.Cost(20 + rng.Intn(200))
		if rng.Intn(2) == 0 { // GPU-friendly
			gpuCost[j] = base
			cpuCost[j] = base * hetlb.Cost(3+rng.Intn(6))
		} else { // CPU-friendly
			cpuCost[j] = base
			gpuCost[j] = base * hetlb.Cost(2+rng.Intn(4))
		}
	}
	model, err := hetlb.NewTwoCluster(cpus, gpus, cpuCost, gpuCost)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d CPUs + %d GPUs; %d jobs arriving online (mean gap 2 time units)\n\n",
		cpus, gpus, jobs)
	fmt.Printf("%-18s %12s %10s %10s %12s\n",
		"balance period", "mean flow", "max flow", "makespan", "jobs moved")
	for _, period := range []int64{0, 100, 20, 5} {
		res, err := hetlb.RunDynamic(model, hetlb.DynamicOptions{
			Seed:             7,
			MeanInterarrival: 2,
			BalanceEvery:     period,
		})
		if err != nil {
			log.Fatal(err)
		}
		label := fmt.Sprint(period)
		if period == 0 {
			label = "off"
		}
		fmt.Printf("%-18s %12.0f %10d %10d %12d\n",
			label, res.MeanFlow, res.MaxFlow, res.Makespan, res.JobsMoved)
	}
	fmt.Println("\nfaster balancing → lower flow times, more job movement;")
	fmt.Println("the paper's 'minimize tasks exchanged' future work is exactly this trade-off.")
}
